"""The R-tree proper: STR bulk load, Guttman quadratic-split insertion,
ball range queries, and best-first incremental nearest-neighbour search.

Like the PM-tree, the R-tree stores *point ids* into one shared ``(n, m)``
matrix so leaf-level distance evaluations are vectorised gathers.  A
``distance_computations`` counter tracks how many point-distance evaluations
each query performed — the quantity the §4.2 cost model predicts.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.rtree.geometry import MBR
from repro.utils.heap import BoundedMaxHeap, MinHeap


class _Node:
    """One R-tree node.  Leaves hold point ids; inner nodes hold children."""

    __slots__ = ("mbr", "children", "point_ids", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.mbr: Optional[MBR] = None
        self.children: List["_Node"] = []
        self.point_ids: List[int] = []

    def entry_count(self) -> int:
        return len(self.point_ids) if self.is_leaf else len(self.children)


class RTree:
    """An R-tree over the rows of a fixed point matrix.

    Parameters
    ----------
    points:
        ``(n, m)`` float64 matrix; the tree indexes row numbers.
    capacity:
        Maximum entries per node (fan-out).  Minimum fill for splits is
        ``capacity // 2``.
    """

    def __init__(self, points: np.ndarray, capacity: int = 32) -> None:
        points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if capacity < 4:
            raise ValueError(f"capacity must be at least 4, got {capacity}")
        self.points = points
        self.capacity = capacity
        self.min_fill = capacity // 2
        self._root: Optional[_Node] = None
        self._count = 0
        #: point-distance evaluations performed by queries (reset manually)
        self.distance_computations = 0
        #: node accesses performed by queries (reset manually)
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, points: np.ndarray, capacity: int = 32, method: str = "str"
    ) -> "RTree":
        """Build an R-tree over every row of *points*.

        ``method='str'`` uses Sort-Tile-Recursive packing (fast, well-shaped
        nodes); ``method='insert'`` inserts one row at a time through the
        Guttman path (exercises ChooseLeaf/Split; used by tests).
        """
        tree = cls(points, capacity=capacity)
        ids = np.arange(points.shape[0] if hasattr(points, "shape") else len(points))
        if method == "str":
            tree._bulk_load_str(ids)
        elif method == "insert":
            for point_id in ids:
                tree.insert(int(point_id))
        else:
            raise ValueError(f"unknown build method {method!r}")
        return tree

    def _bulk_load_str(self, ids: np.ndarray) -> None:
        if ids.size == 0:
            self._root = _Node(is_leaf=True)
            self._root.mbr = None
            return
        leaves = self._str_pack_leaves(ids)
        self._count = int(ids.size)
        level = leaves
        while len(level) > 1:
            level = self._str_pack_inner(level)
        self._root = level[0]

    def _str_pack_leaves(self, ids: np.ndarray) -> List[_Node]:
        """Sort-Tile-Recursive packing of point ids into leaf nodes."""
        coords = self.points[ids]
        m = coords.shape[1]
        groups: List[np.ndarray] = [ids[np.argsort(coords[:, 0], kind="stable")]]
        # Recursively slab-partition along each axis.
        for axis in range(m):
            pages_needed = int(np.ceil(len(ids) / self.capacity))
            remaining_axes = m - axis
            slabs_this_axis = int(np.ceil(pages_needed ** (1.0 / remaining_axes)))
            if slabs_this_axis <= 1 and axis < m - 1:
                continue
            new_groups: List[np.ndarray] = []
            for group in groups:
                order = np.argsort(self.points[group, axis], kind="stable")
                group = group[order]
                slab_size = int(np.ceil(len(group) / max(1, slabs_this_axis)))
                slab_size = max(slab_size, self.capacity if axis == m - 1 else 1)
                for start in range(0, len(group), slab_size):
                    new_groups.append(group[start : start + slab_size])
            groups = new_groups
            if all(len(g) <= self.capacity for g in groups):
                break
        leaves: List[_Node] = []
        for group in groups:
            for start in range(0, len(group), self.capacity):
                chunk = group[start : start + self.capacity]
                leaf = _Node(is_leaf=True)
                leaf.point_ids = [int(i) for i in chunk]
                leaf.mbr = MBR.from_points(self.points[chunk])
                leaves.append(leaf)
        return leaves

    def _str_pack_inner(self, nodes: List[_Node]) -> List[_Node]:
        """Pack one level of nodes into parents, ordered by MBR center."""
        centers = np.array([node.mbr.center() for node in nodes])
        order = np.lexsort(tuple(centers[:, axis] for axis in range(centers.shape[1] - 1, -1, -1)))
        parents: List[_Node] = []
        for start in range(0, len(nodes), self.capacity):
            chunk = [nodes[i] for i in order[start : start + self.capacity]]
            parent = _Node(is_leaf=False)
            parent.children = chunk
            parent.mbr = MBR.union_of([c.mbr for c in chunk])
            parents.append(parent)
        return parents

    # ------------------------------------------------------------------
    # insertion (Guttman)
    # ------------------------------------------------------------------

    def insert(self, point_id: int) -> None:
        """Insert one row id through ChooseLeaf + quadratic split."""
        if not 0 <= point_id < self.points.shape[0]:
            raise IndexError(f"point_id {point_id} out of range")
        point = self.points[point_id]
        if self._root is None or (self._root.is_leaf and self._root.mbr is None):
            root = _Node(is_leaf=True)
            root.point_ids = [point_id]
            root.mbr = MBR.from_point(point)
            self._root = root
            self._count = 1
            return
        split = self._insert_into(self._root, point_id, point)
        if split is not None:
            new_root = _Node(is_leaf=False)
            new_root.children = [self._root, split]
            new_root.mbr = MBR.union_of([self._root.mbr, split.mbr])
            self._root = new_root
        self._count += 1

    def _insert_into(self, node: _Node, point_id: int, point: np.ndarray) -> Optional[_Node]:
        node.mbr.extend_point(point)
        if node.is_leaf:
            node.point_ids.append(point_id)
            if len(node.point_ids) > self.capacity:
                return self._split_leaf(node)
            return None
        child = self._choose_subtree(node, point)
        split = self._insert_into(child, point_id, point)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.capacity:
                return self._split_inner(node)
        return None

    def _choose_subtree(self, node: _Node, point: np.ndarray) -> _Node:
        """Guttman ChooseLeaf: least volume enlargement, ties by volume."""
        target = MBR.from_point(point)
        best, best_key = None, None
        for child in node.children:
            key = (child.mbr.enlargement(target), child.mbr.volume())
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _split_leaf(self, node: _Node) -> _Node:
        ids = node.point_ids
        rects = [MBR.from_point(self.points[i]) for i in ids]
        group_a, group_b = self._quadratic_split(rects)
        right = _Node(is_leaf=True)
        right.point_ids = [ids[i] for i in group_b]
        right.mbr = MBR.union_of([rects[i] for i in group_b])
        node.point_ids = [ids[i] for i in group_a]
        node.mbr = MBR.union_of([rects[i] for i in group_a])
        return right

    def _split_inner(self, node: _Node) -> _Node:
        children = node.children
        rects = [c.mbr for c in children]
        group_a, group_b = self._quadratic_split(rects)
        right = _Node(is_leaf=False)
        right.children = [children[i] for i in group_b]
        right.mbr = MBR.union_of([rects[i] for i in group_b])
        node.children = [children[i] for i in group_a]
        node.mbr = MBR.union_of([rects[i] for i in group_a])
        return right

    def _quadratic_split(self, rects: List[MBR]) -> Tuple[List[int], List[int]]:
        """Guttman's quadratic split over entry rectangles; returns the two
        index groups, each respecting the minimum fill."""
        count = len(rects)
        # PickSeeds: the pair wasting the most volume if grouped together.
        worst_pair, worst_waste = (0, 1), -np.inf
        for i in range(count):
            for j in range(i + 1, count):
                merged = rects[i].copy()
                merged.extend(rects[j])
                waste = merged.volume() - rects[i].volume() - rects[j].volume()
                if waste > worst_waste:
                    worst_waste, worst_pair = waste, (i, j)
        seed_a, seed_b = worst_pair
        group_a, group_b = [seed_a], [seed_b]
        mbr_a, mbr_b = rects[seed_a].copy(), rects[seed_b].copy()
        remaining = [i for i in range(count) if i not in (seed_a, seed_b)]
        while remaining:
            # Force-assign when one group must absorb everything left to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self.min_fill:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == self.min_fill:
                group_b.extend(remaining)
                break
            # PickNext: entry with the greatest preference for one group.
            best_index, best_diff, best_pick = -1, -1.0, 0
            for position, candidate in enumerate(remaining):
                delta_a = mbr_a.enlargement(rects[candidate])
                delta_b = mbr_b.enlargement(rects[candidate])
                diff = abs(delta_a - delta_b)
                if diff > best_diff:
                    best_diff = diff
                    best_index = position
                    best_pick = 0 if delta_a < delta_b else 1
            candidate = remaining.pop(best_index)
            if best_pick == 0:
                group_a.append(candidate)
                mbr_a.extend(rects[candidate])
            else:
                group_b.append(candidate)
                mbr_b.extend(rects[candidate])
        return group_a, group_b

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def reset_counters(self) -> None:
        self.distance_computations = 0
        self.node_accesses = 0

    def range_query(
        self, query: np.ndarray, radius: float, limit: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """All ``(point_id, distance)`` with distance ≤ *radius*.

        With *limit*, delegates to :meth:`knn_within` so the collected
        points are the *closest* ``limit`` in-ball points — the same
        semantics as the PM-tree's limited range query, which keeps the
        R-LSH ablation an honest tree-for-tree comparison.
        """
        query = np.asarray(query, dtype=np.float64)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if self._root is None or self._root.mbr is None:
            return []
        if limit is not None:
            if limit <= 0:
                return []
            return self.knn_within(query, k=limit, radius=radius)
        results: List[Tuple[int, float]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.node_accesses += 1
            if node.is_leaf:
                ids = np.asarray(node.point_ids, dtype=np.int64)
                diff = self.points[ids] - query
                dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                self.distance_computations += int(ids.size)
                inside = dists <= radius
                for point_id, dist in zip(ids[inside], dists[inside]):
                    results.append((int(point_id), float(dist)))
            else:
                for child in node.children:
                    if child.mbr.intersects_ball(query, radius):
                        stack.append(child)
        return results

    def knn_within(
        self,
        query: np.ndarray,
        k: int,
        radius: float = np.inf,
        exclude: Optional[set] = None,
    ) -> List[Tuple[int, float]]:
        """The k nearest points with distance ≤ *radius*, sorted ascending.

        Best-first over MINDIST with a shrinking admission bound: once k
        candidates are held, subtrees are pruned against the current k-th
        best distance instead of the full radius.  The R-tree twin of
        :meth:`repro.pmtree.tree.PMTree.knn_within` — but note the R-tree
        has no per-point prefilter at the leaves, so every member of an
        opened leaf costs a distance computation (the gap Table 2 predicts).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if self._root is None or self._root.mbr is None:
            return []
        best = BoundedMaxHeap(k)
        frontier = MinHeap()
        frontier.push(self._root.mbr.min_distance(query), self._root)
        while frontier:
            bound, node = frontier.pop()
            admission = min(radius, best.bound)
            if bound > admission:
                break
            self.node_accesses += 1
            if node.is_leaf:
                ids = np.asarray(node.point_ids, dtype=np.int64)
                diff = self.points[ids] - query
                dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                self.distance_computations += int(ids.size)
                inside = dists <= admission
                for point_id, dist in zip(ids[inside], dists[inside]):
                    pid = int(point_id)
                    if exclude is not None and pid in exclude:
                        continue
                    best.push(float(dist), pid)
            else:
                cutoff = min(radius, best.bound)
                for child in node.children:
                    child_bound = child.mbr.min_distance(query)
                    if child_bound <= cutoff:
                        frontier.push(child_bound, child)
        return [(pid, dist) for dist, pid in best.items_sorted()]

    def nearest_iter(self, query: np.ndarray) -> Iterator[Tuple[int, float]]:
        """Yield ``(point_id, distance)`` in ascending distance order.

        Best-first traversal over MINDIST — the ``incSearch`` primitive SRS
        calls repeatedly.  The iterator is lazy: consuming T results costs
        O((T + visited nodes)·log frontier).
        """
        query = np.asarray(query, dtype=np.float64)
        if self._root is None or self._root.mbr is None:
            return
        frontier = MinHeap()
        frontier.push(self._root.mbr.min_distance(query), ("node", self._root))
        while frontier:
            key, (kind, payload) = frontier.pop()
            if kind == "point":
                yield payload, key
                continue
            node: _Node = payload
            self.node_accesses += 1
            if node.is_leaf:
                ids = np.asarray(node.point_ids, dtype=np.int64)
                diff = self.points[ids] - query
                dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                self.distance_computations += int(ids.size)
                for point_id, dist in zip(ids, dists):
                    frontier.push(float(dist), ("point", int(point_id)))
            else:
                for child in node.children:
                    frontier.push(child.mbr.min_distance(query), ("node", child))

    def knn(self, query: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Exact k nearest neighbours in the indexed (projected) space."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        results: List[Tuple[int, float]] = []
        for point_id, dist in self.nearest_iter(query):
            results.append((point_id, dist))
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------

    def height(self) -> int:
        height, node = 0, self._root
        while node is not None:
            height += 1
            node = node.children[0] if not node.is_leaf and node.children else None
        return height

    def iter_nodes(self) -> Iterator[Tuple[int, "_Node"]]:
        """Yield ``(depth, node)`` pairs; used by the cost model and tests."""
        if self._root is None:
            return
        stack = [(0, self._root)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            if not node.is_leaf:
                stack.extend((depth + 1, child) for child in node.children)

    def check_invariants(self) -> None:
        """Raise AssertionError on any violated structural invariant."""
        if self._root is None or self._root.mbr is None:
            assert self._count == 0
            return
        seen: List[int] = []
        leaf_depths = set()
        for depth, node in self.iter_nodes():
            if node.is_leaf:
                leaf_depths.add(depth)
                assert node.point_ids, "empty leaf"
                for point_id in node.point_ids:
                    assert node.mbr.contains_point(self.points[point_id]), (
                        f"leaf MBR does not contain point {point_id}"
                    )
                seen.extend(node.point_ids)
            else:
                assert node.children, "empty inner node"
                for child in node.children:
                    assert node.mbr.lo.shape == child.mbr.lo.shape
                    assert bool(np.all(node.mbr.lo <= child.mbr.lo)), "child MBR leaks (lo)"
                    assert bool(np.all(node.mbr.hi >= child.mbr.hi)), "child MBR leaks (hi)"
        assert len(leaf_depths) == 1, f"leaves at different depths: {leaf_depths}"
        assert len(seen) == self._count, f"point count mismatch {len(seen)} != {self._count}"
        assert len(set(seen)) == len(seen), "duplicate point ids in leaves"
