"""Minimum bounding rectangles and ball/rectangle geometry in R^m."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MBR:
    """An axis-aligned minimum bounding rectangle ``[lo, hi]`` in R^m.

    Mutable on purpose: insertion paths extend rectangles in place.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        self.lo = np.asarray(self.lo, dtype=np.float64).copy()
        self.hi = np.asarray(self.hi, dtype=np.float64).copy()
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError(f"lo/hi must be matching 1-D arrays, got {self.lo.shape} / {self.hi.shape}")
        if np.any(self.lo > self.hi):
            raise ValueError("lo must be <= hi on every axis")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point: np.ndarray) -> "MBR":
        point = np.asarray(point, dtype=np.float64)
        return cls(point, point)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got shape {points.shape}")
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, rects: list["MBR"]) -> "MBR":
        if not rects:
            raise ValueError("cannot take the union of zero rectangles")
        lo = np.minimum.reduce([r.lo for r in rects])
        hi = np.maximum.reduce([r.hi for r in rects])
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------

    @property
    def dims(self) -> int:
        return self.lo.shape[0]

    def extents(self) -> np.ndarray:
        return self.hi - self.lo

    def volume(self) -> float:
        return float(np.prod(self.extents()))

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree 'margin' measure)."""
        return float(self.extents().sum())

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) * 0.5

    # ------------------------------------------------------------------
    # predicates and updates
    # ------------------------------------------------------------------

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def intersects(self, other: "MBR") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def copy(self) -> "MBR":
        return MBR(self.lo, self.hi)

    def extend_point(self, point: np.ndarray) -> None:
        point = np.asarray(point, dtype=np.float64)
        np.minimum(self.lo, point, out=self.lo)
        np.maximum(self.hi, point, out=self.hi)

    def extend(self, other: "MBR") -> None:
        np.minimum(self.lo, other.lo, out=self.lo)
        np.maximum(self.hi, other.hi, out=self.hi)

    def enlargement(self, other: "MBR") -> float:
        """Volume increase if *other* were merged into this rectangle."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        return float(np.prod(hi - lo)) - self.volume()

    # ------------------------------------------------------------------
    # ball geometry
    # ------------------------------------------------------------------

    def min_distance(self, point: np.ndarray) -> float:
        """Euclidean distance from *point* to the nearest face (0 inside).

        This is MINDIST, the lower bound that drives both ball-range pruning
        and the best-first incremental NN traversal.
        """
        point = np.asarray(point, dtype=np.float64)
        below = np.maximum(self.lo - point, 0.0)
        above = np.maximum(point - self.hi, 0.0)
        gap = np.maximum(below, above)
        return float(np.sqrt(np.dot(gap, gap)))

    def max_distance(self, point: np.ndarray) -> float:
        """Distance from *point* to the farthest corner (MAXDIST)."""
        point = np.asarray(point, dtype=np.float64)
        far = np.maximum(np.abs(point - self.lo), np.abs(point - self.hi))
        return float(np.sqrt(np.dot(far, far)))

    def intersects_ball(self, center: np.ndarray, radius: float) -> bool:
        return self.min_distance(center) <= radius
