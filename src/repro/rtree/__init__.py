"""R-tree substrate.

SRS (§3.1) indexes the projected points with an R-tree and repeatedly asks
for the *next* nearest point in the projected space (``incSearch``); the
R-LSH ablation (§6.1) runs PM-LSH's radius-enlarging algorithm on an R-tree
instead of a PM-tree.  This package provides both access paths: ball range
queries and a best-first incremental nearest-neighbour iterator, plus
Guttman quadratic-split insertion and Sort-Tile-Recursive bulk loading.
"""

from repro.rtree.geometry import MBR
from repro.rtree.tree import RTree

__all__ = ["MBR", "RTree"]
