"""Datasets: synthetic generators, the seven emulated evaluation datasets,
and the statistics reported in Table 3 of the paper (HV, RC, LID).

The paper evaluates on seven real datasets (Audio, Deep, NUS, MNIST, GIST,
Cifar, Trevi).  Those are not redistributable here, so :mod:`repro.datasets.registry`
provides seeded synthetic emulations with the same dimensionalities and
tunable cardinality, generated so that the Table 3 hardness statistics
(homogeneity of viewpoints, relative contrast, local intrinsic
dimensionality) land in the neighbourhood of the published values.
"""

from repro.datasets.distance import (
    DistanceDistribution,
    MarginalDistribution,
    pairwise_distances,
    point_to_points_distances,
    sample_distance_distribution,
)
from repro.datasets.registry import DATASET_SPECS, DatasetSpec, Workload, load_dataset
from repro.datasets.stats import (
    DatasetStatistics,
    dataset_statistics,
    homogeneity_of_viewpoints,
    local_intrinsic_dimensionality,
    relative_contrast,
)
from repro.datasets.synthetic import (
    gaussian_mixture,
    low_intrinsic_dimension,
    sample_queries,
    uniform_hypercube,
)

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "DatasetStatistics",
    "DistanceDistribution",
    "MarginalDistribution",
    "Workload",
    "dataset_statistics",
    "gaussian_mixture",
    "homogeneity_of_viewpoints",
    "load_dataset",
    "local_intrinsic_dimensionality",
    "low_intrinsic_dimension",
    "pairwise_distances",
    "point_to_points_distances",
    "relative_contrast",
    "sample_distance_distribution",
    "sample_queries",
    "uniform_hypercube",
]
