"""Registry of the seven emulated evaluation datasets.

The paper evaluates on Audio, Deep, NUS, MNIST, GIST, Cifar and Trevi
(Table 3).  Real copies are not redistributable, so each entry here is a
*seeded synthetic emulation*: same dimensionality, configurable cardinality
(scaled down by default so experiments run on a laptop), and generator
parameters tuned so the hardness statistics follow the paper's ordering —
NUS and GIST the hardest (large LID, small RC), Audio and Trevi the easiest
(RC ≈ 3), MNIST/Cifar/Deep in between.

The default cardinalities are ``paper_n // 50`` (clamped to ≥ 2000); pass an
explicit ``n`` or set the ``REPRO_SCALE`` environment variable to change the
divisor globally (e.g. ``REPRO_SCALE=10`` for n = paper_n // 10).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.datasets.synthetic import clustered_manifold, sample_queries
from repro.utils.rng import RandomState, derive_seed

#: Default down-scaling divisor applied to the paper's cardinalities.
DEFAULT_SCALE_DIVISOR = 50

#: Smallest emulated dataset we will generate regardless of scaling.
MIN_POINTS = 2_000


@dataclass(frozen=True)
class DatasetSpec:
    """Blueprint for one emulated dataset.

    ``paper_n`` / ``paper_d`` are the published cardinality and
    dimensionality; ``paper_hv`` / ``paper_rc`` / ``paper_lid`` are the
    Table 3 statistics the generator parameters were tuned against.
    """

    name: str
    paper_n: int
    paper_d: int
    paper_hv: float
    paper_rc: float
    paper_lid: float
    intrinsic_dim: int
    num_clusters: int
    cluster_spread: float
    cluster_std: float
    ambient_noise: float
    base_seed: int

    def default_n(self) -> int:
        divisor = _scale_divisor()
        return max(MIN_POINTS, self.paper_n // divisor)

    def generate(self, n: int | None = None, seed: RandomState = None) -> np.ndarray:
        """Materialise the dataset as an ``(n, paper_d)`` float64 array."""
        size = self.default_n() if n is None else int(n)
        if size <= 0:
            raise ValueError(f"n must be positive, got {size}")
        effective_seed = self.base_seed if seed is None else seed
        return clustered_manifold(
            n=size,
            d=self.paper_d,
            intrinsic_dim=self.intrinsic_dim,
            num_clusters=self.num_clusters,
            cluster_spread=self.cluster_spread,
            cluster_std=self.cluster_std,
            ambient_noise=self.ambient_noise,
            seed=effective_seed,
        )


def _scale_divisor() -> int:
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE_DIVISOR
    try:
        divisor = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be an integer, got {raw!r}") from exc
    if divisor <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {divisor}")
    return divisor


# Generator parameters were tuned (see tests/datasets/test_registry.py for the
# regression checks) so that each emulation's measured statistics track the
# paper's hardness ordering:
#   * higher intrinsic_dim + fewer/looser clusters -> larger LID, smaller RC
#   * tight clusters on a small manifold -> small LID, large RC
DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="Audio", paper_n=54_000, paper_d=192,
            paper_hv=0.9273, paper_rc=2.97, paper_lid=5.6,
            intrinsic_dim=6, num_clusters=60, cluster_spread=6.0,
            cluster_std=1.0, ambient_noise=0.02, base_seed=101,
        ),
        DatasetSpec(
            name="Deep", paper_n=1_000_000, paper_d=256,
            paper_hv=0.9393, paper_rc=1.96, paper_lid=12.1,
            intrinsic_dim=14, num_clusters=40, cluster_spread=3.0,
            cluster_std=1.0, ambient_noise=0.02, base_seed=102,
        ),
        DatasetSpec(
            name="NUS", paper_n=269_000, paper_d=500,
            paper_hv=0.9995, paper_rc=1.67, paper_lid=24.5,
            intrinsic_dim=28, num_clusters=8, cluster_spread=1.5,
            cluster_std=1.0, ambient_noise=0.02, base_seed=103,
        ),
        DatasetSpec(
            name="MNIST", paper_n=60_000, paper_d=784,
            paper_hv=0.9531, paper_rc=2.38, paper_lid=6.5,
            intrinsic_dim=8, num_clusters=50, cluster_spread=4.5,
            cluster_std=1.0, ambient_noise=0.02, base_seed=104,
        ),
        DatasetSpec(
            name="GIST", paper_n=983_000, paper_d=960,
            paper_hv=0.9670, paper_rc=1.94, paper_lid=18.9,
            intrinsic_dim=22, num_clusters=20, cluster_spread=2.5,
            cluster_std=1.0, ambient_noise=0.02, base_seed=105,
        ),
        DatasetSpec(
            name="Cifar", paper_n=50_000, paper_d=1_024,
            paper_hv=0.9457, paper_rc=1.97, paper_lid=9.0,
            intrinsic_dim=11, num_clusters=40, cluster_spread=3.5,
            cluster_std=1.0, ambient_noise=0.02, base_seed=106,
        ),
        DatasetSpec(
            name="Trevi", paper_n=100_000, paper_d=4_096,
            paper_hv=0.9432, paper_rc=2.95, paper_lid=9.2,
            intrinsic_dim=10, num_clusters=70, cluster_spread=6.0,
            cluster_std=1.0, ambient_noise=0.01, base_seed=107,
        ),
    ]
}


@dataclass(frozen=True)
class Workload:
    """A dataset plus its query set, ready for the evaluation harness."""

    name: str
    data: np.ndarray
    queries: np.ndarray
    spec: DatasetSpec | None = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def d(self) -> int:
        return self.data.shape[1]


def load_dataset(
    name: str,
    n: int | None = None,
    num_queries: int = 50,
    seed: RandomState = None,
) -> Workload:
    """Generate an emulated dataset and carve out a held-out query set.

    Mirrors the paper's protocol (queries sampled from the dataset itself);
    held-out so that recall/ratio are not trivially perfect.
    """
    if name not in DATASET_SPECS:
        known = ", ".join(sorted(DATASET_SPECS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    spec = DATASET_SPECS[name]
    points = spec.generate(n=n, seed=seed)
    query_seed = derive_seed(spec.base_seed if seed is None else seed, salt=0xC0FFEE)
    data, queries = sample_queries(points, num_queries=num_queries, seed=query_seed)
    return Workload(name=name, data=data, queries=queries, spec=spec)


def available_datasets() -> list[str]:
    """Names of the emulated datasets, in the paper's Table 3 order."""
    return list(DATASET_SPECS)
