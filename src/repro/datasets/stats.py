"""Dataset hardness statistics reported in Table 3 of the paper.

* **HV** — homogeneity of viewpoints (Ciaccia, Patella, Zezula, PODS'98):
  how similar the distance distributions *as seen from different points*
  are.  Values near 1 mean a single global distance distribution F(x) is a
  good stand-in for any per-point distribution, which is the assumption the
  §4.2 cost models and the §4.5 radius selection rely on.
* **RC** — relative contrast (He, Kumar, Chang, ICML'12): mean distance
  divided by NN distance, averaged over query points.  Small RC = hard.
* **LID** — local intrinsic dimensionality via the maximum-likelihood
  estimator (Amsaleg et al., KDD'15).  Large LID = hard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.distance import chunked_knn, pairwise_distances, point_to_points_distances
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class DatasetStatistics:
    """The Table 3 row for one dataset."""

    n: int
    d: int
    hv: float
    rc: float
    lid: float

    def as_row(self, name: str) -> str:
        return (
            f"{name:<10} {self.n / 1e3:>9.1f} {self.d:>6d} "
            f"{self.hv:>8.4f} {self.rc:>7.2f} {self.lid:>7.1f}"
        )


def homogeneity_of_viewpoints(
    points: np.ndarray,
    num_viewpoints: int = 50,
    num_targets: int = 1000,
    grid_size: int = 64,
    seed: RandomState = None,
) -> float:
    """Estimate HV ∈ [0, 1].

    For sampled viewpoints o, build each viewpoint's distance ECDF F_o over a
    shared sample of target points, then measure the average absolute
    discrepancy between pairs of viewpoint ECDFs on a distance grid,
    normalised by the observed distance range:

        HV = 1 − E_{o1,o2}[ (1/|grid|) Σ_x |F_{o1}(x) − F_{o2}(x)| ]

    A dataset whose points all "see" the same distance profile scores ≈ 1.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        raise ValueError("need at least three points to estimate HV")
    rng = as_generator(seed)
    num_viewpoints = min(num_viewpoints, n)
    num_targets = min(num_targets, n)
    viewpoints = points[rng.choice(n, size=num_viewpoints, replace=False)]
    targets = points[rng.choice(n, size=num_targets, replace=False)]
    # distance matrix: viewpoints × targets
    dists = pairwise_distances(viewpoints, targets)
    lo, hi = float(dists.min()), float(dists.max())
    if hi <= lo:
        return 1.0
    grid = np.linspace(lo, hi, grid_size)
    # ECDF of each viewpoint's distance sample evaluated on the grid.
    sorted_rows = np.sort(dists, axis=1)
    ecdfs = np.empty((num_viewpoints, grid_size))
    for i in range(num_viewpoints):
        ecdfs[i] = np.searchsorted(sorted_rows[i], grid, side="right") / num_targets
    # Mean |F_o1 - F_o2| over sampled viewpoint pairs.
    num_pairs = min(500, num_viewpoints * (num_viewpoints - 1) // 2)
    first = rng.integers(0, num_viewpoints, size=num_pairs)
    second = rng.integers(0, num_viewpoints, size=num_pairs)
    valid = first != second
    if not np.any(valid):
        return 1.0
    discrepancy = np.abs(ecdfs[first[valid]] - ecdfs[second[valid]]).mean()
    return float(1.0 - discrepancy)


def relative_contrast(
    points: np.ndarray,
    num_queries: int = 100,
    seed: RandomState = None,
) -> float:
    """RC = E_q[ mean distance to q / NN distance to q ] over sampled points.

    Queries are dataset points; the self-distance (zero) is excluded from
    both the mean and the NN distance.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        raise ValueError("need at least three points to estimate RC")
    rng = as_generator(seed)
    num_queries = min(num_queries, n)
    chosen = rng.choice(n, size=num_queries, replace=False)
    ratios = []
    for index in chosen:
        dists = point_to_points_distances(points[index], points)
        dists = np.delete(dists, index)
        nearest = float(dists.min())
        if nearest <= 0.0:
            continue  # duplicate point; RC undefined for this viewpoint
        ratios.append(float(dists.mean()) / nearest)
    if not ratios:
        raise ValueError("all sampled queries had duplicate nearest neighbours")
    return float(np.mean(ratios))


def local_intrinsic_dimensionality(
    points: np.ndarray,
    k: int = 20,
    num_queries: int = 200,
    seed: RandomState = None,
) -> float:
    """Average MLE of the local intrinsic dimensionality.

    For each sampled point x with k-NN distances r_1 ≤ … ≤ r_k (excluding x
    itself):

        LID(x) = − ( (1/k) Σ_{i=1..k} ln(r_i / r_k) )^{-1}

    and the dataset LID is the mean over samples.  Zero distances (exact
    duplicates) are dropped from the sum.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < k + 2:
        raise ValueError(f"need at least k + 2 = {k + 2} points, got {n}")
    rng = as_generator(seed)
    num_queries = min(num_queries, n)
    chosen = rng.choice(n, size=num_queries, replace=False)
    # k+1 neighbours so the self match can be dropped.
    _, dists = chunked_knn(points[chosen], points, k + 1)
    estimates = []
    for row in dists:
        radii = row[1:]  # drop self (distance 0 at position 0)
        r_k = radii[-1]
        if r_k <= 0.0:
            continue
        positive = radii[radii > 0.0]
        if positive.size == 0:
            continue
        log_ratio_sum = float(np.log(positive / r_k).sum()) / k
        if log_ratio_sum >= 0.0:
            continue  # degenerate neighbourhood (all radii equal)
        estimates.append(-1.0 / log_ratio_sum)
    if not estimates:
        raise ValueError("could not estimate LID: too many duplicate points")
    return float(np.mean(estimates))


def dataset_statistics(
    points: np.ndarray,
    seed: RandomState = None,
    lid_k: int = 20,
) -> DatasetStatistics:
    """Compute the full Table 3 row (n, d, HV, RC, LID) for one dataset."""
    points = np.asarray(points, dtype=np.float64)
    rng = as_generator(seed)
    return DatasetStatistics(
        n=points.shape[0],
        d=points.shape[1],
        hv=homogeneity_of_viewpoints(points, seed=rng),
        rc=relative_contrast(points, seed=rng),
        lid=local_intrinsic_dimensionality(points, k=lid_k, seed=rng),
    )
