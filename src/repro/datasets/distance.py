"""Distance utilities: pairwise kernels, the distance distribution F(x)
(Eq. 4) and per-dimension marginals G_i(x) (Eq. 8) used by the §4.2 cost
models and by PM-LSH's radius selection (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator

#: Chunk size (rows) for blocked brute-force distance computation; keeps the
#: temporary (chunk × n) matrix small enough to stay cache- and RAM-friendly.
_CHUNK_ROWS = 256


def point_to_points_distances(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query row to every row of *points*."""
    query = np.asarray(query, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {query.shape}")
    if points.ndim != 2 or points.shape[1] != query.shape[0]:
        raise ValueError(
            f"points must be 2-D with dimension {query.shape[0]}, got shape {points.shape}"
        )
    diff = points - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Dense Euclidean distance matrix between rows of *a* and rows of *b*.

    Uses the ‖a‖² + ‖b‖² − 2a·b expansion in float64, clamped at zero before
    the square root to absorb rounding noise.
    """
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    sq_a = np.einsum("ij,ij->i", a, a)
    sq_b = np.einsum("ij,ij->i", b, b)
    sq = sq_a[:, None] + sq_b[None, :] - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def pairwise_distances_rowwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix via explicit difference tensors.

    Slower than the GEMM expansion in :func:`pairwise_distances` for large
    inputs, but **bitwise reproducible across row subsets**: every (i, j)
    entry is reduced from ``a[i] - b[j]`` alone, so distances computed
    against any subset of *b*'s rows equal the full-matrix floats exactly.
    The exact range / closest-pair reference paths use this so sharded
    (per-subset) answers match the single-index answers byte for byte.
    Callers must block: the temporary holds ``len(a) × len(b) × d`` floats.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def chunked_knn(
    queries: np.ndarray, points: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbours for each query row, by blocked brute force.

    Returns ``(ids, distances)`` with shapes ``(q, k)``; rows are sorted by
    ascending distance.  This is the ground-truth oracle for the evaluation
    harness; correctness is what matters, so it stays simple.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    all_ids = np.empty((queries.shape[0], k), dtype=np.int64)
    all_dists = np.empty((queries.shape[0], k), dtype=np.float64)
    for start in range(0, queries.shape[0], _CHUNK_ROWS):
        block = queries[start : start + _CHUNK_ROWS]
        dists = pairwise_distances(block, points)
        if k < n:
            part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(n), (block.shape[0], 1))
        part_d = np.take_along_axis(dists, part, axis=1)
        # (distance, id) order — two stable sorts, id first — so exact
        # results break ties exactly like the sharded engine's merge.
        id_order = np.argsort(part, axis=1, kind="stable")
        part = np.take_along_axis(part, id_order, axis=1)
        part_d = np.take_along_axis(part_d, id_order, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        block_ids = np.take_along_axis(part, order, axis=1)
        block_d = np.take_along_axis(part_d, order, axis=1)
        if k < n:
            # argpartition picks an ARBITRARY subset among points tied at
            # the k-th distance; rows where ties straddle the boundary get
            # a deterministic per-row re-selection (all ties kept, then
            # the (distance, id) cut) so the k-th rank stays canonical.
            kth = block_d[:, -1]
            tied_total = (dists <= kth[:, None]).sum(axis=1)
            for row in np.flatnonzero(tied_total > k):
                candidates = np.flatnonzero(dists[row] <= kth[row])
                row_order = np.lexsort((candidates, dists[row][candidates]))[:k]
                block_ids[row] = candidates[row_order]
                block_d[row] = dists[row][candidates[row_order]]
        all_ids[start : start + block.shape[0]] = block_ids
        all_dists[start : start + block.shape[0]] = block_d
    return all_ids, all_dists


@dataclass(frozen=True)
class DistanceDistribution:
    """Empirical distance distribution F(x) = Pr[‖o_i, o_j‖ ≤ x] (Eq. 4).

    Backed by a sorted sample of pairwise distances; ``cdf`` and ``quantile``
    are step-function evaluations on that sample.
    """

    samples: np.ndarray  # sorted, 1-D

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size == 0:
            raise ValueError("samples must be a non-empty 1-D array")
        if np.any(np.diff(samples) < 0):
            samples = np.sort(samples)
        object.__setattr__(self, "samples", samples)

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """F(x): fraction of sampled pairwise distances ≤ x."""
        result = np.searchsorted(self.samples, np.asarray(x, dtype=np.float64), side="right")
        result = result / self.samples.size
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result

    def quantile(self, p: float) -> float:
        """Smallest x with F(x) ≥ p; the inverse used to pick r_min (§4.5)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if p == 0.0:
            return float(self.samples[0])
        index = int(np.ceil(p * self.samples.size)) - 1
        return float(self.samples[index])

    @property
    def max_distance(self) -> float:
        return float(self.samples[-1])

    @property
    def mean_distance(self) -> float:
        return float(self.samples.mean())


def sample_distance_distribution(
    points: np.ndarray,
    num_pairs: int = 100_000,
    seed: RandomState = None,
) -> DistanceDistribution:
    """Estimate F(x) by sampling random point pairs (with replacement)."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 2:
        raise ValueError("need at least two points to sample pair distances")
    rng = as_generator(seed)
    left = rng.integers(0, n, size=num_pairs)
    right = rng.integers(0, n, size=num_pairs)
    # Re-draw the (rare) self pairs so zero distances don't distort the tail.
    collisions = left == right
    while np.any(collisions):
        right[collisions] = rng.integers(0, n, size=int(collisions.sum()))
        collisions = left == right
    diff = points[left] - points[right]
    distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    return DistanceDistribution(np.sort(distances))


@dataclass(frozen=True)
class MarginalDistribution:
    """Per-dimension marginal G_i(x) = Pr[X_i ≤ x] (Eq. 8), one ECDF per axis.

    Used by the R-tree cost model to score how likely a node's MBR extent on
    each axis is to intersect a (cube-substituted) query ball.
    """

    sorted_columns: np.ndarray  # (n, dims), each column sorted ascending

    def __post_init__(self) -> None:
        cols = np.asarray(self.sorted_columns, dtype=np.float64)
        if cols.ndim != 2 or cols.size == 0:
            raise ValueError("sorted_columns must be a non-empty 2-D array")
        object.__setattr__(self, "sorted_columns", cols)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MarginalDistribution":
        points = np.asarray(points, dtype=np.float64)
        return cls(np.sort(points, axis=0))

    @property
    def dims(self) -> int:
        return self.sorted_columns.shape[1]

    def cdf(self, dim: int, x: float) -> float:
        """G_dim(x): fraction of points whose coordinate on *dim* is ≤ x."""
        column = self.sorted_columns[:, dim]
        return float(np.searchsorted(column, x, side="right") / column.size)

    def interval_mass(self, dim: int, lo: float, hi: float) -> float:
        """G_dim(hi) − G_dim(lo): probability mass of [lo, hi] on one axis."""
        if hi < lo:
            return 0.0
        return self.cdf(dim, hi) - self.cdf(dim, lo)
