"""Synthetic point-cloud generators.

Three families cover the regimes the paper's datasets span:

* :func:`gaussian_mixture` — clustered data (image descriptors such as
  Cifar/Trevi/MNIST behave like mixtures of compact clusters; low LID,
  high RC).
* :func:`low_intrinsic_dimension` — points on a random low-dimensional
  affine manifold embedded in d dimensions plus ambient noise (controls the
  local intrinsic dimensionality directly; GIST/NUS/Deep-like hardness).
* :func:`uniform_hypercube` — the classic hard case with vanishing relative
  contrast.

All generators return float64 arrays of shape ``(n, d)`` and are fully
deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator


def _validate_shape(n: int, d: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if d <= 0:
        raise ValueError(f"d must be positive, got {d}")


def uniform_hypercube(
    n: int,
    d: int,
    low: float = 0.0,
    high: float = 1.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample *n* points uniformly from ``[low, high]^d``."""
    _validate_shape(n, d)
    if high <= low:
        raise ValueError(f"high must exceed low, got [{low}, {high}]")
    rng = as_generator(seed)
    return rng.uniform(low, high, size=(n, d))


def gaussian_mixture(
    n: int,
    d: int,
    num_clusters: int = 10,
    cluster_std: float = 1.0,
    center_box: float = 10.0,
    weights: np.ndarray | None = None,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample from a mixture of *num_clusters* isotropic Gaussians.

    Cluster centres are uniform in ``[-center_box, center_box]^d``; each
    point picks a cluster (optionally non-uniformly via *weights*) and adds
    ``N(0, cluster_std²·I)`` noise.  Smaller ``cluster_std / center_box``
    ratios produce more clustered data: higher relative contrast and lower
    local intrinsic dimensionality.
    """
    _validate_shape(n, d)
    if num_clusters <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    if cluster_std < 0:
        raise ValueError(f"cluster_std must be non-negative, got {cluster_std}")
    rng = as_generator(seed)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (num_clusters,) or np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("weights must be a non-negative vector of length num_clusters")
        weights = weights / weights.sum()
    centers = rng.uniform(-center_box, center_box, size=(num_clusters, d))
    assignment = rng.choice(num_clusters, size=n, p=weights)
    return centers[assignment] + rng.normal(0.0, cluster_std, size=(n, d))


def low_intrinsic_dimension(
    n: int,
    d: int,
    intrinsic_dim: int,
    ambient_noise: float = 0.05,
    scale: float = 1.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Points on a random *intrinsic_dim*-dimensional affine subspace of R^d.

    Latent coordinates are standard normal, mapped through a random
    orthonormal basis, then perturbed with isotropic ambient noise.  The
    measured LID of the result tracks ``intrinsic_dim`` (slightly inflated by
    the noise), which is how the dataset registry dials in Table 3's LID
    column.
    """
    _validate_shape(n, d)
    if not 1 <= intrinsic_dim <= d:
        raise ValueError(f"intrinsic_dim must be in [1, {d}], got {intrinsic_dim}")
    if ambient_noise < 0:
        raise ValueError(f"ambient_noise must be non-negative, got {ambient_noise}")
    rng = as_generator(seed)
    # Random orthonormal basis of the latent subspace via QR decomposition.
    basis, _ = np.linalg.qr(rng.normal(size=(d, intrinsic_dim)))
    latent = rng.normal(0.0, scale, size=(n, intrinsic_dim))
    points = latent @ basis.T
    if ambient_noise > 0:
        points = points + rng.normal(0.0, ambient_noise, size=(n, d))
    return points


def clustered_manifold(
    n: int,
    d: int,
    intrinsic_dim: int,
    num_clusters: int,
    cluster_spread: float = 4.0,
    cluster_std: float = 1.0,
    ambient_noise: float = 0.05,
    seed: RandomState = None,
) -> np.ndarray:
    """Gaussian mixture living on a shared low-dimensional manifold.

    Combines the two main generators: cluster structure governs relative
    contrast while the manifold dimension governs LID.  This is the workhorse
    behind most emulated datasets because real descriptor datasets exhibit
    both properties simultaneously.
    """
    _validate_shape(n, d)
    if not 1 <= intrinsic_dim <= d:
        raise ValueError(f"intrinsic_dim must be in [1, {d}], got {intrinsic_dim}")
    rng = as_generator(seed)
    basis, _ = np.linalg.qr(rng.normal(size=(d, intrinsic_dim)))
    centers = rng.uniform(-cluster_spread, cluster_spread, size=(num_clusters, intrinsic_dim))
    assignment = rng.integers(0, num_clusters, size=n)
    latent = centers[assignment] + rng.normal(0.0, cluster_std, size=(n, intrinsic_dim))
    points = latent @ basis.T
    if ambient_noise > 0:
        points = points + rng.normal(0.0, ambient_noise, size=(n, d))
    return points


def sample_queries(
    points: np.ndarray,
    num_queries: int,
    perturbation: float = 0.0,
    hold_out: bool = True,
    seed: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw a query workload from a dataset, mirroring the paper's protocol.

    The paper selects queries randomly from each dataset.  With
    ``hold_out=True`` (default) the chosen rows are *removed* from the
    returned data so a query's nearest neighbour is never itself at distance
    zero, which would make every ratio trivially 1.  ``perturbation`` adds
    isotropic Gaussian noise (as a fraction of the mean coordinate scale) to
    the queries instead of/in addition to holding out.

    Returns ``(data, queries)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if not 1 <= num_queries < n:
        raise ValueError(f"num_queries must be in [1, {n - 1}], got {num_queries}")
    rng = as_generator(seed)
    chosen = rng.choice(n, size=num_queries, replace=False)
    queries = points[chosen].copy()
    if perturbation > 0.0:
        coordinate_scale = float(np.std(points))
        queries = queries + rng.normal(0.0, perturbation * coordinate_scale, size=queries.shape)
    if hold_out:
        mask = np.ones(n, dtype=bool)
        mask[chosen] = False
        data = points[mask]
    else:
        data = points
    return data, queries
