"""Replica snapshot shipping: hot-swap a serving index from newer archives.

The deployment shape this supports: one writer process owns the
authoritative index (absorbing ``add``/``delete``/``compact``) and
periodically ``save()``s it; reader processes each hold a
:class:`Replica` and poll :meth:`Replica.refresh` against the snapshot
path.  ``save()`` stamps every archive with the index's monotonically
increasing epoch, so a refresh is a cheap peek at the stored epoch
(:func:`repro.persistence.snapshot_epoch`) followed — only when the
snapshot is genuinely newer — by the zero-rebuild ``load()`` path and an
atomic swap of the served object.

Attached to an :class:`~repro.serving.server.AsyncSearchServer`, the
swap goes through :meth:`~repro.serving.server.AsyncSearchServer.swap_index`,
which drains pending batches and invalidates the projected-query cache
first, so no request ever sees a half-switched index.
"""

from __future__ import annotations

from typing import Optional


class Replica:
    """A serving-side handle that follows an index snapshot file.

    ``refresh(path)`` loads the archive at *path* only when its stored
    epoch is newer than the replica's current one, so polling it in a
    loop costs one metadata read per tick.  ``server`` (optional) is an
    :class:`~repro.serving.server.AsyncSearchServer` whose index is
    hot-swapped on every successful refresh.
    """

    def __init__(self, server: Optional[object] = None) -> None:
        self.index = None
        self.epoch = -1
        self.path: Optional[str] = None
        self.refreshes = 0
        self.server = server

    def refresh(self, path: str) -> bool:
        """Adopt the snapshot at *path* if it is newer; returns whether it was.

        "Newer" means the archive's stored epoch strictly exceeds the
        epoch of the replica's current index — re-shipping an old or
        identical snapshot is a no-op, so the swap order is monotonic no
        matter how snapshots arrive.
        """
        from repro.persistence import load_index, snapshot_epoch

        epoch = snapshot_epoch(path)
        if self.index is not None and epoch <= self.epoch:
            return False
        self.index = load_index(path)
        self.epoch = int(self.index.epoch)
        self.path = str(path)
        self.refreshes += 1
        self._metrics_registry().counter(
            "replica_refreshes", "Snapshot archives adopted by a replica"
        ).inc()
        if self.server is not None:
            self.server.swap_index(self.index)
        return True

    def _metrics_registry(self):
        """The server's registry when attached, else the process default."""
        from repro.obs.metrics import default_registry

        if self.server is not None and hasattr(self.server, "metrics_registry"):
            return self.server.metrics_registry
        return default_registry()

    def __repr__(self) -> str:
        if self.index is None:
            return "Replica(empty)"
        return f"Replica(epoch={self.epoch}, index={self.index!r})"
