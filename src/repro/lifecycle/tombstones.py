"""Tombstone bookkeeping: which global ids of an index are dead.

Deletes in this library are *logical*: :meth:`repro.ANNIndex.delete`
marks ids in a :class:`TombstoneSet` and every query path drops dead ids
at verification time — before any top-k / range cut — so results match
an index that never held those points.  The physical reclaim happens at
compaction (:mod:`repro.lifecycle.compaction`), which re-fits over the
live rows and resets the set.

The set is kept as a sorted, unique ``int64`` array: membership tests
over candidate id arrays are one vectorised ``np.isin`` per query round,
and the array serialises directly into ``.npz`` snapshots.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class TombstoneSet:
    """Sorted set of dead global ids with vectorised membership tests."""

    __slots__ = ("_ids",)

    def __init__(self, ids: Optional[np.ndarray] = None) -> None:
        self._ids = (
            np.unique(np.asarray(ids, dtype=np.int64))
            if ids is not None
            else np.empty(0, dtype=np.int64)
        )

    def __len__(self) -> int:
        return int(self._ids.size)

    def __bool__(self) -> bool:
        return self._ids.size > 0

    def __contains__(self, gid: int) -> bool:
        i = int(np.searchsorted(self._ids, int(gid)))
        return i < self._ids.size and int(self._ids[i]) == int(gid)

    def __repr__(self) -> str:
        return f"TombstoneSet({self._ids.size} dead)"

    def ids(self) -> np.ndarray:
        """The dead ids, sorted ascending (a read-only view)."""
        return self._ids

    def as_set(self) -> set:
        """The dead ids as a Python set (for recursive tree ``exclude``)."""
        return set(self._ids.tolist())

    def mark(self, ids: np.ndarray | Iterable[int]) -> None:
        """Add *ids* (already validated by the caller) to the set."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size:
            self._ids = np.union1d(self._ids, ids)

    def contains(self, ids: np.ndarray) -> np.ndarray:
        """Boolean mask over *ids*: True where the id is dead."""
        ids = np.asarray(ids, dtype=np.int64)
        if self._ids.size == 0:
            return np.zeros(ids.shape, dtype=bool)
        return np.isin(ids, self._ids)

    def alive_mask(self, size: int) -> np.ndarray:
        """``(size,)`` boolean mask: True for live ids in ``[0, size)``."""
        mask = np.ones(int(size), dtype=bool)
        if self._ids.size:
            mask[self._ids[self._ids < size]] = False
        return mask

    def live_ids(self, size: int) -> np.ndarray:
        """Sorted live ids in ``[0, size)``."""
        return np.flatnonzero(self.alive_mask(size))

    def copy(self) -> "TombstoneSet":
        return TombstoneSet(self._ids.copy())
