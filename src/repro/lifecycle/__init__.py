"""Index lifecycle: tombstone deletes, compaction, replica shipping.

The write-path layer over the fit/add/search core:

* :class:`TombstoneSet` — the logical-delete bookkeeping behind
  :meth:`repro.ANNIndex.delete`;
* :class:`CompactionPolicy` / :class:`CompactionResult` /
  :func:`compact_index` — when and how to physically reclaim dead rows
  and re-fit drifted n-dependent parameters;
* :class:`Replica` — hot-swap a serving index from newer ``save()``
  snapshots (each stamped with a monotonically increasing epoch).
"""

from repro.lifecycle.compaction import (
    CompactionPolicy,
    CompactionResult,
    compact_index,
    dense_id_map,
)
from repro.lifecycle.replica import Replica
from repro.lifecycle.tombstones import TombstoneSet

__all__ = [
    "CompactionPolicy",
    "CompactionResult",
    "Replica",
    "TombstoneSet",
    "compact_index",
    "dense_id_map",
]
