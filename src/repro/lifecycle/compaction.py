"""Compaction: physically reclaim tombstoned rows and re-fit drifted indexes.

Tombstone deletes (:mod:`repro.lifecycle.tombstones`) are logical, so two
things accumulate in a long-lived index: dead rows that still occupy
memory and consume candidate budget, and n-dependent parameters (the
⌈βn⌉ + k budget, r_min's target mass, QALSH's derived m/α) that were
solved for the *fit-time* cardinality while ``add()`` kept growing the
dataset.  Compaction fixes both at once: re-fit over exactly the live
rows, renumber ids densely, and reset the tombstone set.

Two entry points:

* :meth:`repro.ANNIndex.compact` — in place: the index re-fits itself.
* :func:`compact_index` — into a **fresh object** built from the same
  constructor parameters, leaving the original untouched; this is what
  :meth:`repro.serving.AsyncSearchServer.compact` runs on a background
  thread so the old index keeps answering queries until the swap.

:class:`CompactionPolicy` decides *when*: tombstone-ratio and
growth-ratio thresholds, evaluated against any fitted index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class CompactionResult:
    """What one compaction did.

    ``id_map`` maps every pre-compaction global id to its post-compaction
    id (``-1`` for deleted rows) — callers holding old ids translate them
    through it.  ``epoch`` is the index epoch after the compaction; it is
    strictly greater than any epoch the old ids were valid under.
    """

    id_map: np.ndarray
    removed: int
    before_ntotal: int
    after_ntotal: int
    epoch: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "id_map", np.asarray(self.id_map, dtype=np.int64))


@dataclass(frozen=True)
class CompactionPolicy:
    """Thresholds that trigger a compaction.

    ``max_tombstone_ratio`` fires when at least that fraction of the
    stored rows is dead (and at least ``min_tombstones`` rows are, so a
    tiny index does not thrash).  ``max_growth_ratio`` fires when
    ``ntotal`` has grown past that multiple of the fit-time cardinality —
    the point where n-dependent parameters solved at fit time have
    drifted enough to be worth a re-fit.  Either threshold can be
    disabled with ``None``.

    >>> from repro.lifecycle import CompactionPolicy
    >>> policy = CompactionPolicy(max_tombstone_ratio=0.3)
    >>> policy.max_tombstone_ratio
    0.3
    """

    max_tombstone_ratio: Optional[float] = 0.25
    max_growth_ratio: Optional[float] = 2.0
    min_tombstones: int = 1

    def __post_init__(self) -> None:
        if self.max_tombstone_ratio is not None and not (
            0.0 < self.max_tombstone_ratio <= 1.0
        ):
            raise ValueError(
                f"max_tombstone_ratio must be in (0, 1], got {self.max_tombstone_ratio}"
            )
        if self.max_growth_ratio is not None and self.max_growth_ratio <= 1.0:
            raise ValueError(
                f"max_growth_ratio must be > 1, got {self.max_growth_ratio}"
            )
        if self.min_tombstones < 1:
            raise ValueError(f"min_tombstones must be >= 1, got {self.min_tombstones}")

    def reason(self, index) -> Optional[str]:
        """Why *index* should compact, or ``None`` if it should not."""
        if index.ntotal == 0:
            return None
        dead = index.num_tombstones
        if (
            self.max_tombstone_ratio is not None
            and dead >= self.min_tombstones
            and dead / index.ntotal >= self.max_tombstone_ratio
        ):
            return (
                f"tombstone ratio {dead / index.ntotal:.3f} >= "
                f"{self.max_tombstone_ratio:.3f}"
            )
        fitted = max(1, index.fitted_n)
        if (
            self.max_growth_ratio is not None
            and index.ntotal / fitted >= self.max_growth_ratio
        ):
            return (
                f"growth ratio {index.ntotal / fitted:.2f} >= "
                f"{self.max_growth_ratio:.2f}"
            )
        return None

    def should_compact(self, index) -> bool:
        """Whether either threshold has been crossed for *index*."""
        return self.reason(index) is not None


def dense_id_map(live_ids: np.ndarray, before_ntotal: int) -> np.ndarray:
    """old id -> new dense id over *live_ids* (sorted); ``-1`` for dead."""
    id_map = np.full(int(before_ntotal), -1, dtype=np.int64)
    id_map[live_ids] = np.arange(live_ids.size, dtype=np.int64)
    return id_map


def compact_index(index) -> Tuple["object", CompactionResult]:
    """Compact *index* into a fresh object; the original is untouched.

    The clone is built from the same constructor parameters (captured at
    construction time), fitted over exactly the live rows, and its epoch
    is advanced past the source's so replica shipping stays monotonic.
    Returns ``(fresh_index, result)``.

    Only reads the source index (``data``, the tombstone set), so it is
    safe to run on a background thread while the source keeps serving
    queries — the pattern behind
    :meth:`repro.serving.AsyncSearchServer.compact`.
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: cannot compact an unfitted index")
    live = index.live_ids()
    if live.size == 0:
        raise ValueError(f"{index.name}: cannot compact with zero live points")
    before = index.ntotal
    removed = index.num_tombstones
    fresh = type(index)(**(getattr(index, "_init_kwargs", None) or {}))
    # The registry binding is not a constructor parameter; carry it over so
    # the fresh index keeps publishing into the same registry as the source.
    if getattr(index, "_metrics", None) is not None:
        fresh.metrics = index._metrics
    fresh.fit(index.data[live])
    fresh._index_epoch = max(fresh.epoch, index.epoch + 1)
    result = CompactionResult(
        id_map=dense_id_map(live, before),
        removed=removed,
        before_ntotal=before,
        after_ntotal=fresh.ntotal,
        epoch=fresh.epoch,
    )
    return fresh, result
