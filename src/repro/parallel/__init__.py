"""Process-parallel query execution on shared-memory snapshots.

The GIL caps what the thread-pool fan-out in :mod:`repro.engine` can buy:
shard searches overlap only while NumPy holds the GIL dropped, and
`results/engine_scaling.txt` measured the net effect as a *slowdown*.
This package provides the process-level alternative:

* :mod:`repro.parallel.shm` — publish a dict of NumPy arrays into one
  named ``multiprocessing.shared_memory`` segment and re-attach them
  zero-copy from another process;
* :mod:`repro.parallel.jobs` — the per-shard job semantics (k clamping,
  empty-shard blocks, pair-count caps) shared by the thread and process
  fan-outs, so both backends execute literally the same code per shard;
* :mod:`repro.parallel.worker` — the worker-process main loop: attach
  read-only to shard snapshots, answer query jobs, re-attach on epoch
  bumps;
* :mod:`repro.parallel.pool` — the parent-side :class:`WorkerPool`
  driving N workers over pipes, publishing shard snapshots, and
  reporting pool health into :mod:`repro.obs`.

The sharded engine exposes all of this as
``ShardedIndex(..., backend="process")`` (or the ``"process-sharded"``
registry alias); see :doc:`docs/parallelism` for the protocol.
"""

from repro.parallel.pool import WorkerPool
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    AttachedSegment,
    PublishedSegment,
    SegmentHandle,
    attach_segment,
    leaked_segments,
    publish_arrays,
)

__all__ = [
    "SEGMENT_PREFIX",
    "AttachedSegment",
    "PublishedSegment",
    "SegmentHandle",
    "WorkerPool",
    "attach_segment",
    "leaked_segments",
    "publish_arrays",
]
