"""Parent-side process pool serving shard queries over shared memory.

:class:`WorkerPool` owns N worker processes (one duplex pipe each) and
the published shard segments.  Shard s is owned by worker ``s % N`` —
a fixed mapping, so re-publication after an epoch bump reaches exactly
the worker already serving that shard.  One query batch is one broadcast
round: every worker receives the job, answers for its shards, and the
parent reassembles the replies into shard order for the deterministic
merge.

Health telemetry publishes into the owner's metrics registry (the same
one the engine and serving layer use):

* ``pool_workers`` — workers currently alive;
* ``pool_publishes`` / ``pool_reattaches`` — shard snapshot
  publications, total and the subset replacing a live segment after an
  epoch bump;
* ``pool_ipc_roundtrips`` — worker message round-trips;
* ``pool_bytes_published`` — cumulative snapshot bytes copied into
  shared memory;
* ``pool_worker_busy_ms`` / ``pool_worker_utilization`` (per-worker
  labels) — shard wall time inside the last round, absolute and as a
  fraction of the round.

Start-method note: the default context is ``fork`` where available
(cheap, instant bootstrap) and ``spawn`` elsewhere; pass
``mp_context="spawn"`` / ``"forkserver"`` to choose explicitly.  Fork
duplicates the calling process — create the pool (first query) from the
thread that owns the index, before handing it to an async server, or
use ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel.shm import PublishedSegment, publish_arrays
from repro.parallel.worker import worker_main


def default_start_method() -> str:
    """``"fork"`` where the platform offers it, else ``"spawn"``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class WorkerPool:
    """N worker processes attached read-only to published shard snapshots.

    Parameters
    ----------
    num_workers:
        Worker process count (>= 1).  Shard s belongs to worker
        ``s % num_workers``.
    mp_context:
        Start method name (``"fork"``, ``"spawn"``, ``"forkserver"``);
        defaults to :func:`default_start_method`.
    registry:
        Metrics registry for pool health; the process default when None.
    labels:
        Label set scoping the pool's instruments (e.g. the owning
        engine's scope labels).
    """

    def __init__(
        self,
        num_workers: int,
        *,
        mp_context: str | None = None,
        registry=None,
        labels: Dict[str, str] | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self._ctx = multiprocessing.get_context(mp_context or default_start_method())
        self.start_method = self._ctx.get_start_method()
        if registry is None:
            from repro.obs.metrics import default_registry

            registry = default_registry()
        self._registry = registry
        self._labels = dict(labels or {})
        self._workers: List[Tuple[Any, Any]] = []  # (process, parent_conn)
        self._segments: Dict[int, PublishedSegment] = {}
        self._closed = False
        self._bind_metrics()

    # -- metrics -------------------------------------------------------

    def _bind_metrics(self) -> None:
        registry, labels = self._registry, self._labels
        self._c_publishes = registry.counter(
            "pool_publishes", "Shard snapshots published to shared memory", labels
        )
        self._c_reattaches = registry.counter(
            "pool_reattaches",
            "Publications replacing a live segment after an epoch bump",
            labels,
        )
        self._c_roundtrips = registry.counter(
            "pool_ipc_roundtrips", "Worker message round-trips", labels
        )
        self._c_bytes = registry.counter(
            "pool_bytes_published", "Snapshot bytes copied into shared memory", labels
        )
        self._g_workers = registry.gauge(
            "pool_workers", "Worker processes currently alive", labels
        )

    def rebind_metrics(self, registry, labels: Dict[str, str] | None = None) -> None:
        """Point the pool's instruments at a (new) registry, carrying
        counter values over — the engine calls this on a registry swap."""
        old = (
            self._c_publishes,
            self._c_reattaches,
            self._c_roundtrips,
            self._c_bytes,
        )
        self._registry = registry
        if labels is not None:
            self._labels = dict(labels)
        self._bind_metrics()
        for stale, fresh in zip(
            old,
            (self._c_publishes, self._c_reattaches, self._c_roundtrips, self._c_bytes),
        ):
            if fresh is not stale:
                fresh.value = stale.value
        self._g_workers.set(len(self._workers) if not self._closed else 0)

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._workers) and not self._closed

    def start(self) -> "WorkerPool":
        """Spawn the workers (idempotent while running)."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._workers:
            return self
        for worker_id in range(self.num_workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=worker_main,
                args=(worker_id, child_conn),
                name=f"repro-pool-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()  # the parent keeps only its own end
            self._workers.append((process, parent_conn))
        self._g_workers.set(self.num_workers)
        return self

    def owner(self, shard_id: int) -> int:
        """The worker that serves *shard_id*."""
        return int(shard_id) % self.num_workers

    def publish(self, shard_id: int, index, *, registry_name: str | None = None) -> None:
        """Publish *index*'s snapshot for *shard_id* and re-attach its owner.

        The snapshot comes from the index's ``to_shm()`` export; the old
        segment (if any) is unlinked only after the owner acknowledged
        the new one, so the worker never observes a torn shard.
        """
        self.start()
        arrays, state = index.to_shm()
        name = registry_name or type(index).registry_name
        segment = publish_arrays(arrays)
        try:
            self._request(
                self.owner(shard_id),
                ("attach", int(shard_id), segment.handle, state, name),
            )
        except Exception:
            segment.close()
            raise
        stale = self._segments.pop(shard_id, None)
        self._segments[shard_id] = segment
        self._c_publishes.inc()
        self._c_bytes.inc(segment.nbytes)
        if stale is not None:
            stale.close()
            self._c_reattaches.inc()

    def run(self, kind: str, payload: Dict[str, Any]) -> Dict[int, Tuple[Any, float]]:
        """Broadcast one job round; returns ``{shard_id: (result, ms)}``.

        The broadcast goes out to every worker before any reply is read,
        so workers genuinely overlap; replies are folded back into shard
        order by the caller via the returned mapping.
        """
        if not self.running:
            raise RuntimeError("WorkerPool is not running")
        round_start = time.perf_counter()
        message = ("run", kind, payload)
        for _, conn in self._workers:
            conn.send(message)
        outcome: Dict[int, Tuple[Any, float]] = {}
        busy_ms = [0.0] * self.num_workers
        failure: Optional[str] = None
        for worker_id, (_, conn) in enumerate(self._workers):
            reply = self._receive(worker_id, conn)
            if reply[0] == "error":
                failure = failure or f"worker {worker_id} failed:\n{reply[1]}"
                continue
            for shard_id, elapsed_ms, result in reply[1]:
                outcome[shard_id] = (result, float(elapsed_ms))
                busy_ms[worker_id] += float(elapsed_ms)
        self._c_roundtrips.inc(self.num_workers)
        if failure is not None:
            raise RuntimeError(failure)
        round_ms = (time.perf_counter() - round_start) * 1e3
        for worker_id, worker_busy in enumerate(busy_ms):
            labels = {**self._labels, "worker": str(worker_id)}
            self._registry.gauge(
                "pool_worker_busy_ms", "Shard wall time inside the last round", labels
            ).set(worker_busy)
            self._registry.gauge(
                "pool_worker_utilization",
                "Busy fraction of the last round",
                labels,
            ).set(min(1.0, worker_busy / round_ms) if round_ms > 0 else 0.0)
        return outcome

    def ping(self) -> List[int]:
        """Round-trip every worker; returns their ids (raises if one died)."""
        if not self.running:
            raise RuntimeError("WorkerPool is not running")
        for _, conn in self._workers:
            conn.send(("ping",))
        ids = []
        for worker_id, (_, conn) in enumerate(self._workers):
            ids.append(int(self._receive(worker_id, conn)[1]))
        self._c_roundtrips.inc(self.num_workers)
        return ids

    def _request(self, worker_id: int, message: Tuple) -> Any:
        process, conn = self._workers[worker_id]
        conn.send(message)
        self._c_roundtrips.inc()
        reply = self._receive(worker_id, conn)
        if reply[0] == "error":
            raise RuntimeError(f"worker {worker_id} failed:\n{reply[1]}")
        return reply[1]

    def _receive(self, worker_id: int, conn) -> Tuple:
        try:
            return conn.recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"pool worker {worker_id} died mid-request "
                f"(exit code {self._workers[worker_id][0].exitcode})"
            ) from error

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and unlink every segment (idempotent).

        Waits up to *timeout* seconds per worker for a clean exit, then
        escalates to ``terminate()``.  Safe to call twice; after close
        the pool cannot be restarted (build a fresh one).
        """
        if self._closed:
            return
        self._closed = True
        for process, conn in self._workers:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for process, conn in self._workers:
            try:
                if conn.poll(timeout):
                    conn.recv()  # the ("bye",) ack
            except (EOFError, OSError):
                pass
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout)
            try:
                conn.close()
            except Exception:
                pass
        self._workers = []
        for segment in self._segments.values():
            segment.close()
        self._segments = {}
        self._g_workers.set(0)

    def terminate(self) -> None:
        """Kill workers and unlink segments without waiting — the
        ``__del__`` escape hatch; never raises."""
        self._closed = True
        for process, conn in self._workers:
            try:
                process.terminate()
            except Exception:
                pass
            try:
                conn.close()
            except Exception:
                pass
        self._workers = []
        for segment in self._segments.values():
            segment.close()
        self._segments = {}
        try:
            self._g_workers.set(0)
        except Exception:
            pass

    def __del__(self) -> None:
        try:
            self.terminate()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("running" if self._workers else "idle")
        return (
            f"WorkerPool(workers={self.num_workers}, start={self.start_method!r}, "
            f"segments={len(self._segments)}, {state})"
        )
