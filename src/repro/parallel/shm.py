"""Named shared-memory segments holding a dict of NumPy arrays.

One :func:`publish_arrays` call packs any ``{key: ndarray}`` mapping into
a single ``multiprocessing.shared_memory`` segment: each array's bytes
are copied once into the segment at a 64-byte-aligned offset, and the
layout (key, dtype, shape, offset) travels in a small picklable
:class:`SegmentHandle`.  Another process re-attaches with
:func:`attach_segment` and gets **read-only, zero-copy** NumPy views over
the same physical pages — the worker-bootstrap primitive behind the
process-pool shard backend.

Lifetime contract
-----------------
The publisher owns the segment: :meth:`PublishedSegment.close` unmaps
*and unlinks* it (idempotent).  Attachers only ever unmap.  Segment
names carry the :data:`SEGMENT_PREFIX` marker so a leak check —
:func:`leaked_segments`, used by the CI smoke gate — can scan
``/dev/shm`` for anything this library left behind.

CPython's ``resource_tracker`` would normally *also* register an
attached segment and unlink it when the attaching process exits — which
would tear the parent's segment down under it.  Attachers therefore
never register with the tracker (``track=False`` on 3.13+, suppressed
registration before); the publisher keeps its registration, so if the
parent dies without cleanup the tracker is exactly the safety net we
want.
"""

from __future__ import annotations

import inspect
import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

#: Leading marker of every segment name this library creates; the CI
#: leak check greps ``/dev/shm`` for it (see :func:`leaked_segments`).
SEGMENT_PREFIX = "repro-shm"

#: Byte alignment of each array inside the segment (cache-line sized, and
#: comfortably above NumPy's strictest dtype alignment).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Picklable placement of one array inside a segment."""

    key: str
    dtype: str  # numpy dtype string, e.g. "<f8"
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SegmentHandle:
    """Everything an attacher needs: the segment name plus the layout.

    Small and picklable — this is what ships over the worker pipe when a
    shard snapshot is (re)published.
    """

    name: str
    specs: Tuple[ArraySpec, ...]

    @property
    def nbytes(self) -> int:
        """Total payload bytes described by the layout."""
        return sum(spec.nbytes for spec in self.specs)


#: Whether this Python exposes ``SharedMemory(..., track=False)`` (3.13+).
_HAS_TRACK_FLAG = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to *name* without registering with the resource tracker.

    The publisher's registration is the one that matters (its tracker
    reaps the name if the parent dies uncleanly); an attacher registering
    too makes the tracker unlink the segment when the *attacher* exits —
    tearing it down under the parent.  Python 3.13 grew ``track=False``
    for exactly this; earlier versions get the documented workaround of
    suppressing ``resource_tracker.register`` around the attach (safe:
    workers are single-threaded, and the parent only attaches from the
    one thread that owns the index).
    """
    if _HAS_TRACK_FLAG:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def _views(
    shm: shared_memory.SharedMemory, specs: Tuple[ArraySpec, ...], *, writeable: bool
) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for spec in specs:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = writeable
        arrays[spec.key] = view
    return arrays


class PublishedSegment:
    """A segment this process created and owns (it unlinks on close)."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: SegmentHandle) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent, never raises)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            pass  # a live view pins the mapping; the unlink below still frees the name
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass  # already gone (double close, or reaped externally)

    def __del__(self) -> None:  # best-effort safety net
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._shm is None else f"{self.nbytes} bytes"
        return f"PublishedSegment({self.handle.name!r}, {state})"


class AttachedSegment:
    """A segment another process owns; this process only reads it."""

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: SegmentHandle
    ) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.handle = handle
        #: key -> read-only zero-copy view into the segment.
        self.arrays: Dict[str, np.ndarray] = _views(
            shm, handle.specs, writeable=False
        )

    def close(self) -> None:
        """Unmap (never unlink).  Idempotent; tolerates live views — the
        OS reclaims the mapping when the last view dies with the process."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self.arrays = {}
        try:
            shm.close()
        except BufferError:
            pass  # some view outlived its index object; freed at process exit
        except Exception:
            pass

    def __del__(self) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._shm is None else f"{len(self.arrays)} arrays"
        return f"AttachedSegment({self.handle.name!r}, {state})"


def publish_arrays(arrays: Mapping[str, np.ndarray]) -> PublishedSegment:
    """Copy *arrays* into one fresh named segment; returns the owner handle.

    Keys keep their insertion order in the layout.  Arrays are stored
    C-contiguous in their existing dtype; object dtypes are rejected
    (nothing in a snapshot should need pickle).
    """
    specs = []
    offset = 0
    packed: Dict[str, np.ndarray] = {}
    for key, raw in arrays.items():
        array = np.ascontiguousarray(raw)
        if array.dtype.hasobject:
            raise TypeError(
                f"cannot publish array {key!r} with object dtype {array.dtype}"
            )
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                key=key,
                dtype=array.dtype.str,
                shape=tuple(int(dim) for dim in array.shape),
                offset=offset,
            )
        )
        packed[key] = array
        offset += array.nbytes
    name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, offset))
    handle = SegmentHandle(name=name, specs=tuple(specs))
    for spec in specs:
        if spec.nbytes == 0:
            continue
        target = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        target[...] = packed[spec.key]
    return PublishedSegment(shm, handle)


def attach_segment(handle: SegmentHandle) -> AttachedSegment:
    """Attach read-only to a segment published elsewhere."""
    return AttachedSegment(_attach_untracked(handle.name), handle)


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> Tuple[str, ...]:
    """Names of live ``/dev/shm`` segments carrying *prefix*.

    Empty on platforms without a ``/dev/shm`` filesystem (the check is a
    Linux CI gate, not a portability requirement).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return ()
    return tuple(sorted(entry for entry in entries if entry.startswith(prefix)))
