"""Per-shard job semantics shared by the thread and process fan-outs.

The sharded engine's correctness story — byte-identical results no
matter how the work is executed — rests on every shard running exactly
the same code whichever pool carries it.  These module-level functions
*are* that code: the thread fan-out calls them through closures in the
parent, the process workers call them on their re-attached shard
replicas, and the deterministic ``(distance, id)`` merge in the parent
does the rest.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult
from repro.queries import ClosestPairResult, Knn, Range, RangeResult


def shard_knn(shard: ANNIndex, queries: np.ndarray, spec: Knn) -> BatchResult:
    """One shard's contribution to a kNN batch.

    The spec travels verbatim apart from k, clamped to the shard's LIVE
    count; a fully-tombstoned shard contributes an empty ``(Q, 0)`` block
    that the merge ignores.
    """
    k_s = min(spec.k, shard.nlive)
    if k_s < 1:
        return BatchResult(
            ids=np.full((queries.shape[0], 0), -1, dtype=np.int64),
            distances=np.full((queries.shape[0], 0), np.inf),
        )
    return shard.run(queries, replace(spec, k=k_s))


def shard_range(shard: ANNIndex, queries: np.ndarray, spec: Range) -> RangeResult:
    """One shard's ragged range answer (the spec forwards verbatim)."""
    return shard.run(queries, spec)


def shard_closest_pairs(
    shard: ANNIndex, m: int, budget: int | None
) -> ClosestPairResult:
    """One shard's intra-shard closest pairs, capped at its pair count."""
    if shard.nlive < 2:  # fewer than two live points: no pairs
        return ClosestPairResult(
            pairs=np.empty((0, 2), dtype=np.int64),
            distances=np.empty(0, dtype=np.float64),
        )
    shard_max = shard.nlive * (shard.nlive - 1) // 2
    return shard.closest_pairs(min(m, shard_max), budget=budget)


def shard_sweep(
    shard: ANNIndex,
    blocks,
    radius: float,
    budget: int | None,
):
    """The cross-shard boundary sweep against one TARGET shard.

    *blocks* is a list of ``(source_shard, points)`` pairs — each earlier
    shard's live rows; the target answers a range query at the sweep
    radius for every block.  Returns ``(source_shard, RangeResult)``
    pairs in block order.
    """
    return [
        (source, shard.range_search(points, radius, budget=budget))
        for source, points in blocks
    ]
