"""The worker-process main loop of the process-pool shard backend.

A worker owns a fixed subset of shards (shard s belongs to worker
``s % num_workers``) and holds, per shard, an index replica restored via
``from_shm()`` over read-only shared-memory views — no dataset copy, no
rebuild.  The parent drives it over one duplex pipe with small tuple
messages:

``("attach", shard_id, handle, state, registry_name)``
    (Re)attach the shard: map the named segment, restore the replica
    through the registry class's ``from_shm``, drop any previous replica
    for that shard id and unmap its old segment.  This is both the
    bootstrap and the epoch re-attach path — the parent sends it again
    whenever the shard's epoch bumps.  Reply ``("ok", shard_id)``.
``("run", kind, payload)``
    Run one job over every owned shard in ascending shard order; reply
    ``("ok", [(shard_id, elapsed_ms, result), ...])``.  Kinds map to
    :mod:`repro.parallel.jobs`: ``"knn"``, ``"range"``, ``"cp"`` hit all
    owned shards; ``"sweep"`` hits only the owned shards named in the
    payload's target table.
``("ping",)``
    Liveness probe; reply ``("ok", worker_id)``.
``("stop",)``
    Unmap everything and exit; reply ``("bye",)``.

Any exception while serving a message is caught and shipped back as
``("error", formatted_traceback)`` — the worker stays alive, the parent
raises.  Query payloads carry only ``(queries, spec)``; results return
as the ordinary (compact, array-backed) result dataclasses.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Tuple

from repro.parallel import jobs
from repro.parallel.shm import AttachedSegment, SegmentHandle, attach_segment


def _restore(handle: SegmentHandle, state: Dict[str, Any], registry_name: str):
    """Attach the segment and rebuild the shard replica from its views."""
    from repro.registry import get_index_class

    attachment = attach_segment(handle)
    index = get_index_class(registry_name).from_shm(attachment.arrays, state)
    return attachment, index


def _run_jobs(
    shards: Dict[int, Any], kind: str, payload: Dict[str, Any]
) -> List[Tuple[int, float, Any]]:
    replies: List[Tuple[int, float, Any]] = []
    for shard_id in sorted(shards):
        shard = shards[shard_id]
        start = time.perf_counter()
        if kind == "knn":
            result = jobs.shard_knn(shard, payload["queries"], payload["spec"])
        elif kind == "range":
            result = jobs.shard_range(shard, payload["queries"], payload["spec"])
        elif kind == "cp":
            result = jobs.shard_closest_pairs(shard, payload["m"], payload["budget"])
        elif kind == "sweep":
            blocks = payload["targets"].get(shard_id)
            if blocks is None:
                continue  # this worker's shard is not a sweep target
            result = jobs.shard_sweep(
                shard, blocks, payload["radius"], payload["budget"]
            )
        else:
            raise ValueError(f"unknown job kind {kind!r}")
        replies.append((shard_id, (time.perf_counter() - start) * 1e3, result))
    return replies


def worker_main(worker_id: int, conn) -> None:
    """Serve messages on *conn* until ``stop`` (or the pipe dies).

    Runs as the target of a ``multiprocessing.Process`` — importable at
    module level so the pool works under the ``spawn`` start method too.
    """
    shards: Dict[int, Any] = {}
    segments: Dict[int, AttachedSegment] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; exit quietly
            op = message[0]
            if op == "stop":
                conn.send(("bye",))
                break
            try:
                if op == "attach":
                    _, shard_id, handle, state, registry_name = message
                    attachment, index = _restore(handle, state, registry_name)
                    shards[shard_id] = index
                    stale = segments.pop(shard_id, None)
                    segments[shard_id] = attachment
                    if stale is not None:
                        stale.close()
                    conn.send(("ok", shard_id))
                elif op == "run":
                    _, kind, payload = message
                    conn.send(("ok", _run_jobs(shards, kind, payload)))
                elif op == "ping":
                    conn.send(("ok", worker_id))
                else:
                    conn.send(("error", f"unknown op {op!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        shards.clear()
        for attachment in segments.values():
            attachment.close()
        try:
            conn.close()
        except Exception:
            pass
