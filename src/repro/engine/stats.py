"""Serving statistics for the sharded engine.

The engine keeps two levels of diagnostics:

* :class:`ShardStats` — one per shard: backend repr, ``ntotal``, and the
  wall time / candidate work of the shard's part of the last batch;
* :class:`EngineStats` — the aggregate: lifetime query and batch counters,
  throughput (QPS) over the serving window, and the shard table.

``EngineStats.as_table()`` renders the per-shard view in the same
monospace style the benchmark layer uses, so examples and benches can
print engine state with one call.

:class:`LatencyWindow` — the shared latency digest behind the
per-request percentiles — now lives in :mod:`repro.obs.metrics` as the
histogram backend of the metrics registry; it is re-exported here so
existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.evaluation.tables import format_table
from repro.obs.metrics import LatencyWindow

__all__ = ["EngineStats", "LatencyWindow", "ShardStats"]


@dataclass(frozen=True)
class ShardStats:
    """Snapshot of one shard's contribution to the engine."""

    shard: int
    backend: str
    ntotal: int
    repr: str
    search_ms: float = 0.0  # wall time of this shard in the last batch
    mean_candidates: float = float("nan")  # last batch, per query
    #: PM-tree nodes visited per query in the last batch (flat-traversal
    #: backends report it; NaN for backends without a tree).
    mean_tree_nodes: float = float("nan")
    #: Live points (``ntotal`` minus tombstones); defaults to ``ntotal``
    #: for callers constructing stats without lifecycle information.
    nlive: int = -1

    def __post_init__(self) -> None:
        if self.nlive < 0:
            object.__setattr__(self, "nlive", self.ntotal)

    def as_row(self) -> List[object]:
        return [
            self.shard,
            self.backend,
            self.ntotal,
            self.nlive,
            self.search_ms,
            self.mean_candidates,
            self.mean_tree_nodes,
            self.repr,
        ]

    def as_dict(self) -> Dict[str, object]:
        """Flat form matching ``EngineStats.as_dict``/``ServingStats.as_dict``
        (numbers stay numbers; ``backend``/``repr`` stay strings)."""
        return {
            "shard": self.shard,
            "backend": self.backend,
            "ntotal": self.ntotal,
            "nlive": self.nlive,
            "search_ms": self.search_ms,
            "mean_candidates": self.mean_candidates,
            "mean_tree_nodes": self.mean_tree_nodes,
            "repr": self.repr,
        }


@dataclass(frozen=True)
class EngineStats:
    """Aggregate serving statistics of a :class:`ShardedIndex`."""

    num_shards: int
    num_workers: int
    router: str
    ntotal: int
    batches_served: int
    queries_served: int
    points_added: int
    search_time_ms: float  # cumulative wall time across served batches
    last_batch_ms: float
    last_batch_queries: int
    #: Queries served through the ragged range path (subset of
    #: ``queries_served``) and closest-pair calls answered.
    range_queries_served: int = 0
    closest_pair_calls: int = 0
    #: Fan-out flavour: ``"thread"`` (in-process pool) or ``"process"``
    #: (shared-memory worker pool, :mod:`repro.parallel`).
    pool_backend: str = "thread"
    shards: Tuple[ShardStats, ...] = field(default_factory=tuple)
    #: Lifecycle counters: live points, outstanding tombstones, points
    #: logically deleted over the engine's lifetime, compactions run.
    nlive: int = -1
    tombstones: int = 0
    points_deleted: int = 0
    compactions: int = 0

    def __post_init__(self) -> None:
        if self.nlive < 0:
            object.__setattr__(self, "nlive", self.ntotal)

    @property
    def qps(self) -> float:
        """Lifetime throughput: queries served per second of search wall time."""
        if self.search_time_ms <= 0.0:
            return 0.0
        return self.queries_served / (self.search_time_ms / 1e3)

    @property
    def last_batch_qps(self) -> float:
        if self.last_batch_ms <= 0.0:
            return 0.0
        return self.last_batch_queries / (self.last_batch_ms / 1e3)

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric form, convenient for result tables and logging."""
        return {
            "num_shards": float(self.num_shards),
            "num_workers": float(self.num_workers),
            "ntotal": float(self.ntotal),
            "batches_served": float(self.batches_served),
            "queries_served": float(self.queries_served),
            "points_added": float(self.points_added),
            "search_time_ms": float(self.search_time_ms),
            "qps": float(self.qps),
            "last_batch_ms": float(self.last_batch_ms),
            "last_batch_queries": float(self.last_batch_queries),
            "last_batch_qps": float(self.last_batch_qps),
            "range_queries_served": float(self.range_queries_served),
            "closest_pair_calls": float(self.closest_pair_calls),
            "nlive": float(self.nlive),
            "tombstones": float(self.tombstones),
            "points_deleted": float(self.points_deleted),
            "compactions": float(self.compactions),
        }

    def as_table(self) -> str:
        """Monospace per-shard table plus an aggregate footer line."""
        rows = [shard.as_row() for shard in self.shards]
        note = (
            f"workers={self.num_workers} ({self.pool_backend}) "
            f"router={self.router} "
            f"ntotal={self.ntotal} nlive={self.nlive} "
            f"tombstones={self.tombstones} batches={self.batches_served} "
            f"queries={self.queries_served} (range={self.range_queries_served}) "
            f"cp_calls={self.closest_pair_calls} added={self.points_added} "
            f"deleted={self.points_deleted} compactions={self.compactions} "
            f"lifetime QPS={self.qps:.1f}"
        )
        return format_table(
            f"Engine stats ({self.num_shards} shards)",
            ["Shard", "Backend", "ntotal", "nlive", "Last ms", "Cand/query", "Tree nodes/query", "Index"],
            rows,
            note=note,
        )
