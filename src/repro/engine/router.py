"""Shard routing policies for the serving engine.

A router decides which shard absorbs each incoming point.  Two policies
ship with the engine:

* ``round-robin`` — points cycle through the shards in order.  The cursor
  persists across :meth:`ShardedIndex.add` calls, so a stream of
  single-point adds stays perfectly balanced and global ids remain a
  continuation of the striped ``fit`` partition.
* ``least-loaded`` — each point goes to the currently smallest shard
  (counting earlier points of the same batch), which rebalances a skewed
  engine, e.g. after shards were fitted over uneven partitions.

Routers are stateful objects created through :func:`make_router`; adding a
policy is one subclass plus one entry in :data:`ROUTERS`.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Type

import numpy as np


class ShardRouter(abc.ABC):
    """Assigns incoming points to shards."""

    #: Registry name of the policy (set on subclasses).
    policy: str = "abstract"

    @abc.abstractmethod
    def route(self, num_points: int, loads: Sequence[int]) -> np.ndarray:
        """Shard index for each of *num_points* new points.

        *loads* holds the current point count of every shard; the returned
        ``(num_points,)`` int64 array maps each new point to a shard in
        ``range(len(loads))``.
        """

    def reset(self, loads: Sequence[int]) -> None:
        """Re-initialise any internal state after a (re-)fit."""


class RoundRobinRouter(ShardRouter):
    """Cycle through shards; the cursor survives across calls."""

    policy = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self, loads: Sequence[int]) -> None:
        # Continue the stripe where fit() left off: after a striped split of
        # n points over S shards, the next point belongs on shard n mod S.
        self._cursor = int(sum(loads)) % max(1, len(loads))

    def route(self, num_points: int, loads: Sequence[int]) -> np.ndarray:
        num_shards = len(loads)
        assignment = (self._cursor + np.arange(num_points, dtype=np.int64)) % num_shards
        self._cursor = int((self._cursor + num_points) % num_shards)
        return assignment


class LeastLoadedRouter(ShardRouter):
    """Send every point to the smallest shard at the moment it arrives."""

    policy = "least-loaded"

    def route(self, num_points: int, loads: Sequence[int]) -> np.ndarray:
        running = np.asarray(loads, dtype=np.int64).copy()
        assignment = np.empty(num_points, dtype=np.int64)
        for i in range(num_points):
            target = int(np.argmin(running))  # ties -> lowest shard index
            assignment[i] = target
            running[target] += 1
        return assignment


ROUTERS: Dict[str, Type[ShardRouter]] = {
    RoundRobinRouter.policy: RoundRobinRouter,
    LeastLoadedRouter.policy: LeastLoadedRouter,
}


def make_router(policy: str | ShardRouter) -> ShardRouter:
    """Resolve a policy name (or pass through a router instance)."""
    if isinstance(policy, ShardRouter):
        return policy
    try:
        return ROUTERS[policy]()
    except KeyError:
        known = ", ".join(sorted(ROUTERS))
        raise ValueError(f"unknown router policy {policy!r}; known policies: {known}") from None
