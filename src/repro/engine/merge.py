"""Merging per-shard answers into global results.

Every shard answers a query batch in its *local* id space; the engine owns
one int64 map per shard translating local ids to global ids.  Top-k merges
(:func:`merge_shard_results`) are fully vectorised: translate, concatenate
along the k axis, then lexsort each row by ``(distance, global id)`` and
keep the k best columns.  Ragged range merges
(:func:`merge_shard_range_results`) concatenate each query's CSR slices
across shards and re-sort them by the same ``(distance, global id)`` key.

Sorting secondarily by global id makes the merged order deterministic even
under exact distance ties, which keeps sharded results reproducible across
worker counts (completion order of the shard futures never matters).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.base import BatchResult, aggregate_stats
from repro.queries import RangeResult

#: Per-query stat keys that are *counters* and therefore sum across shards;
#: every other shared key is averaged (e.g. ``final_radius``, ``rounds``).
_SUMMED_STATS = frozenset(
    {"candidates", "distance_computations", "verified", "returned"}
)


def translate_ids(local_ids: np.ndarray, id_map: np.ndarray) -> np.ndarray:
    """Map local shard ids to global ids, preserving ``-1`` padding."""
    local_ids = np.asarray(local_ids, dtype=np.int64)
    valid = local_ids >= 0
    safe = np.where(valid, local_ids, 0)
    return np.where(valid, id_map[safe], np.int64(-1))


def merge_per_query_stats(
    shard_stats: Sequence[Tuple[Dict[str, float], ...]],
) -> Tuple[Dict[str, float], ...]:
    """Combine per-query stat dicts across shards (sum counters, mean rest)."""
    if not shard_stats:
        return ()
    num_queries = max((len(stats) for stats in shard_stats), default=0)
    merged: List[Dict[str, float]] = []
    for i in range(num_queries):
        rows = [stats[i] for stats in shard_stats if i < len(stats)]
        keys = {key for row in rows for key in row}
        combined: Dict[str, float] = {}
        for key in keys:
            values = [row[key] for row in rows if key in row]
            combined[key] = float(
                np.sum(values) if key in _SUMMED_STATS else np.mean(values)
            )
        merged.append(combined)
    return tuple(merged)


def merge_shard_results(
    shard_batches: Sequence[BatchResult],
    id_maps: Sequence[np.ndarray],
    k: int,
) -> BatchResult:
    """Fuse per-shard :class:`BatchResult`s into the global top-k.

    *id_maps[s]* translates shard *s*'s local ids to global ids.  Rows with
    fewer than k merged neighbours keep the standard ``(-1, inf)`` padding.
    """
    if len(shard_batches) != len(id_maps):
        raise ValueError(
            f"got {len(shard_batches)} shard results but {len(id_maps)} id maps"
        )
    if not shard_batches:
        raise ValueError("need at least one shard result to merge")
    num_queries = shard_batches[0].num_queries
    for batch in shard_batches:
        if batch.num_queries != num_queries:
            raise ValueError("shard results answer different query counts")

    gid_blocks = [
        translate_ids(batch.ids, np.asarray(id_map, dtype=np.int64))
        for batch, id_map in zip(shard_batches, id_maps)
    ]
    dist_blocks = [
        np.where(batch.ids >= 0, batch.distances, np.inf) for batch in shard_batches
    ]
    all_gids = np.concatenate(gid_blocks, axis=1)
    all_dists = np.concatenate(dist_blocks, axis=1)

    # Row-wise lexsort: primary key distance, secondary key global id, so
    # ties (and the all-padding tail at +inf) order deterministically.
    order = np.lexsort((all_gids, all_dists), axis=1)[:, :k]
    ids = np.take_along_axis(all_gids, order, axis=1)
    distances = np.take_along_axis(all_dists, order, axis=1)
    # Padding that survived the cut must present the canonical (-1, inf).
    distances = np.where(ids >= 0, distances, np.inf)

    per_query = merge_per_query_stats([batch.per_query_stats for batch in shard_batches])
    return BatchResult(
        ids=ids,
        distances=distances,
        stats=aggregate_stats(per_query),
        per_query_stats=per_query,
    )


def merge_shard_range_results(
    shard_results: Sequence[RangeResult],
    id_maps: Sequence[np.ndarray],
) -> RangeResult:
    """Fuse per-shard ragged :class:`RangeResult`s into the global answer.

    Range answers have no k cut — every shard match survives the merge —
    so this is a concatenation plus a per-query re-sort by
    ``(distance, global id)``, vectorised over the whole batch through a
    query-index column and one lexsort.
    """
    if len(shard_results) != len(id_maps):
        raise ValueError(
            f"got {len(shard_results)} shard results but {len(id_maps)} id maps"
        )
    if not shard_results:
        raise ValueError("need at least one shard result to merge")
    num_queries = shard_results[0].num_queries
    for result in shard_results:
        if result.num_queries != num_queries:
            raise ValueError("shard results answer different query counts")

    qidx_blocks: List[np.ndarray] = []
    gid_blocks: List[np.ndarray] = []
    dist_blocks: List[np.ndarray] = []
    for result, id_map in zip(shard_results, id_maps):
        id_map = np.asarray(id_map, dtype=np.int64)
        qidx_blocks.append(
            np.repeat(np.arange(num_queries, dtype=np.int64), result.counts)
        )
        gid_blocks.append(id_map[result.ids])
        dist_blocks.append(result.distances)
    qidx = np.concatenate(qidx_blocks)
    gids = np.concatenate(gid_blocks)
    dists = np.concatenate(dist_blocks)
    # One batch-wide lexsort: query index first, then (distance, global id).
    order = np.lexsort((gids, dists, qidx))
    qidx, gids, dists = qidx[order], gids[order], dists[order]
    lims = np.searchsorted(qidx, np.arange(num_queries + 1, dtype=np.int64))

    per_query = merge_per_query_stats([result.per_query_stats for result in shard_results])
    # "returned" is a per-shard count and therefore sums across shards.
    per_query = tuple(
        {**stats, "returned": float(lims[i + 1] - lims[i])}
        for i, stats in enumerate(per_query)
    )
    return RangeResult(
        lims=lims,
        ids=gids,
        distances=dists,
        stats=aggregate_stats(per_query),
        per_query_stats=per_query,
    )
