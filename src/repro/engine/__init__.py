"""Sharded parallel query engine: a multi-worker serving layer over the
unified index API.

* :mod:`repro.engine.sharded` — :class:`ShardedIndex`, the data-partitioned
  engine (registered as ``"sharded"`` in the index registry);
* :mod:`repro.engine.router` — shard routing policies for ``add()``;
* :mod:`repro.engine.merge` — vectorised per-shard top-k merging;
* :mod:`repro.engine.stats` — per-shard and engine-level serving stats.
"""

from repro.engine.merge import (
    merge_shard_range_results,
    merge_shard_results,
    translate_ids,
)
from repro.engine.router import (
    LeastLoadedRouter,
    ROUTERS,
    RoundRobinRouter,
    ShardRouter,
    make_router,
)
from repro.engine.sharded import ShardedIndex
from repro.engine.stats import EngineStats, LatencyWindow, ShardStats

__all__ = [
    "EngineStats",
    "LatencyWindow",
    "LeastLoadedRouter",
    "ROUTERS",
    "RoundRobinRouter",
    "ShardRouter",
    "ShardStats",
    "ShardedIndex",
    "make_router",
    "merge_shard_range_results",
    "merge_shard_results",
    "translate_ids",
]
