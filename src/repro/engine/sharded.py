"""ShardedIndex: a multi-worker serving layer over the unified index API.

The engine partitions the dataset across S shards, each an independent
registry-constructed :class:`~repro.baselines.base.ANNIndex` (PM-LSH by
default, but any registered algorithm works as a backend).  A query batch
fans out to every shard and the per-shard answers are merged into one
global result through a stable global → (shard, local) id mapping.  Two
fan-out pools are available:

* ``pool_backend="thread"`` (default) — an in-process thread pool.
  NumPy's GEMM-heavy kernels drop the GIL, but the Python traversal
  around them does not, so shards only partially overlap.
* ``pool_backend="process"`` (alias ``backend="process"``, registry name
  ``"process-sharded"``) — a :class:`~repro.parallel.pool.WorkerPool` of
  worker processes, each attached **read-only** to its shards' snapshots
  through ``multiprocessing.shared_memory`` (the ``to_shm()/from_shm()``
  protocol).  Queries ship only (Q, spec); results return as compact
  arrays; the deterministic merge stays in the parent, so results are
  byte-identical to the thread pool and to a single index.  Writes
  (``add``/``delete``/``compact``) re-publish the affected shards under
  a bumped epoch and workers re-attach — see :doc:`docs/parallelism`.

All three query types fan out:

* **kNN** — per-shard top-k merged by ``(distance, global id)``;
* **range** — per-shard ragged :class:`~repro.queries.RangeResult`s
  concatenated and re-sorted per query (no k cut, every match survives);
* **closest pair** — intra-shard CP on every shard, then a cross-shard
  boundary sweep: with δ the m-th best intra-shard pair distance, every
  cross-shard pair closer than δ is recovered by range-querying each
  later shard with the earlier shard's points at radius δ.

The engine is itself an :class:`ANNIndex`, registered as ``"sharded"``:

>>> import repro
>>> engine = repro.create_index("sharded", backend="pm-lsh", num_shards=4)
>>> engine.fit(data).search(queries, k=10)            # doctest: +SKIP

so the evaluation harness, the benchmarks and the examples drive it with
no special-casing.  ``add()`` routes new points to shards round-robin (or
to the least-loaded shard), exercising each backend's n-dependent
parameter re-derivation, while global ids stay append-only and stable.
"""

from __future__ import annotations

import inspect
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult, QueryResult
from repro.engine.merge import merge_shard_range_results, merge_shard_results
from repro.engine.router import ShardRouter, make_router
from repro.engine.stats import EngineStats, ShardStats
from repro.lifecycle.compaction import CompactionResult, dense_id_map
from repro.lifecycle.tombstones import TombstoneSet
from repro.obs.tracing import current_trace, use_trace
from repro.parallel.jobs import shard_closest_pairs, shard_knn, shard_range, shard_sweep
from repro.queries import ClosestPairResult, Knn, Range, RangeResult, sort_pairs
from repro.registry import get_index_class, register_index
from repro.utils.rng import RandomState, spawn_generators

T = TypeVar("T")

#: Fan-out pool flavours: ``"thread"`` is the classic in-process pool
#: (NumPy kernels drop the GIL, everything else contends); ``"process"``
#: runs shard searches in worker processes attached to shared-memory
#: snapshots (see :mod:`repro.parallel`) — real core parallelism, at the
#: cost of one IPC round-trip per batch.
_POOL_BACKENDS = ("thread", "process")


def _resolve_backend(backend: str | type) -> type:
    """Accept a registry name or an ANNIndex subclass."""
    if isinstance(backend, str):
        return get_index_class(backend)
    if isinstance(backend, type) and issubclass(backend, ANNIndex):
        return backend
    raise TypeError(
        f"backend must be a registry name or an ANNIndex subclass, got {backend!r}"
    )


@register_index("sharded", "engine", "sharded-index")
class ShardedIndex(ANNIndex):
    """Data-partitioned serving engine over any registered backend.

    Parameters
    ----------
    backend:
        Registry name (e.g. ``"pm-lsh"``, ``"exact"``) or ``ANNIndex``
        subclass used for every shard.
    num_shards:
        Number of data partitions S; ``fit`` stripes the dataset over them
        (row i lands on shard i mod S), so cluster structure spreads evenly.
    num_workers:
        Thread-pool width for the per-shard fan-out.  Defaults to
        ``min(num_shards, cpu_count)``; 1 runs shards serially in the
        calling thread.
    router:
        ``"round-robin"`` (default) or ``"least-loaded"`` — the
        :meth:`add` routing policy (see :mod:`repro.engine.router`).
    backend_params:
        Keyword arguments forwarded to every shard's constructor.  A
        ``"seed"`` entry here takes the master-seed role below (it is
        never passed through verbatim — shards must stay decorrelated).
    seed:
        Master seed; each shard receives an independent sub-seed derived
        from it (when the backend accepts one), so a fixed engine seed
        fixes every shard.
    pool_backend:
        ``"thread"`` (default) fans out through an in-process pool;
        ``"process"`` through a shared-memory worker-process pool
        (:mod:`repro.parallel`) — real multi-core parallelism with
        byte-identical results.  The shorthand ``backend="process"`` /
        ``backend="thread"`` selects the pool with the default pm-lsh
        shard algorithm, and the ``"process-sharded"`` registry alias
        pins the process pool by name.
    mp_context:
        Start method for the process pool (``"fork"``, ``"spawn"``,
        ``"forkserver"``); platform default when None.

    Notes
    -----
    Thread safety: the parallelism lives *inside* each query call (one
    batch fans out across the worker pool).  The engine object itself
    follows the same contract as every other :class:`ANNIndex`: one
    caller thread at a time — serve concurrent clients by batching their
    queries, not by sharing the engine across caller threads.
    """

    name = "ShardedIndex"

    #: Deletes forward to the owning shards, which filter their own
    #: tombstones (natively or by over-fetch) before the engine merge.
    _knn_filters_tombstones = True

    def __init__(
        self,
        *,
        backend: str | type = "pm-lsh",
        num_shards: int = 4,
        num_workers: int | None = None,
        router: str | ShardRouter = "round-robin",
        backend_params: Mapping[str, Any] | None = None,
        seed: RandomState = None,
        pool_backend: str = "thread",
        mp_context: str | None = None,
    ) -> None:
        super().__init__()
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        # ``backend="process"`` / ``backend="thread"`` select the fan-out
        # pool (with the default pm-lsh shard algorithm) rather than a
        # shard backend — the spelling the registry alias and the issue
        # docs use: ``ShardedIndex(..., backend="process")``.
        if isinstance(backend, str) and backend.strip().lower() in _POOL_BACKENDS:
            pool_backend = backend.strip().lower()
            backend = "pm-lsh"
        if pool_backend not in _POOL_BACKENDS:
            raise ValueError(
                f"pool_backend must be one of {_POOL_BACKENDS}, got {pool_backend!r}"
            )
        self._pool_backend = pool_backend
        self._mp_context = mp_context
        self._backend_cls = _resolve_backend(backend)
        self._backend_name = getattr(
            self._backend_cls, "registry_name", self._backend_cls.__name__
        )
        # Per-query runtime knobs are forwarded verbatim to the shards, so
        # the engine honours them exactly when its backend does.
        self._honours_knn_overrides = bool(
            getattr(self._backend_cls, "_honours_knn_overrides", False)
        )
        self._honours_range_overrides = bool(
            getattr(self._backend_cls, "_honours_range_overrides", False)
        )
        self.num_shards = int(num_shards)
        self.num_workers = int(
            num_workers
            if num_workers is not None
            else max(1, min(self.num_shards, os.cpu_count() or 1))
        )
        self._backend_params: Dict[str, Any] = dict(backend_params or {})
        self._seed = seed
        self._router = make_router(router)
        self.name = f"Sharded[{self._backend_name}x{self.num_shards}]" + (
            "/process" if self._pool_backend == "process" else ""
        )

        self._shards: List[ANNIndex] = []
        #: per shard: local id -> global id (append-only after fit).
        self._id_maps: List[np.ndarray] = []
        #: per global id: owning shard / local id within it (append-only).
        self._global_shard = np.empty(0, dtype=np.int64)
        self._global_local = np.empty(0, dtype=np.int64)
        self._executor: Optional[ThreadPoolExecutor] = None
        #: The process pool (lazy, ``pool_backend="process"`` only) and the
        #: per-shard epochs last published into shared memory — the staleness
        #: check behind the epoch re-attach protocol.
        self._worker_pool = None
        self._published_epochs: Dict[int, int] = {}
        self._reset_counters()

    # -- metrics plumbing ----------------------------------------------

    #: (attr, metric name, help) for every lifetime engine counter; the
    #: ``engine_`` prefix keeps these series distinct from the serving
    #: front-end's (which wraps the engine and counts *requests*).
    _COUNTERS = (
        ("_batches_served", "engine_batches_served", "Query batches merged"),
        ("_queries_served", "engine_queries_served", "Queries answered (all types)"),
        (
            "_range_queries_served",
            "engine_range_queries_served",
            "Queries answered through the ragged range path",
        ),
        (
            "_closest_pair_calls",
            "engine_closest_pair_calls",
            "Closest-pair calls answered",
        ),
        ("_points_added", "engine_points_added", "Points routed to shards by add()"),
        ("_points_deleted", "engine_points_deleted", "Points tombstoned via delete()"),
        ("_compactions", "engine_compactions", "Engine compactions run"),
        (
            "_search_time_ms",
            "engine_search_time_ms",
            "Cumulative wall time across served batches",
        ),
    )

    def _on_metrics_changed(self) -> None:
        """(Re)build the engine's instrument references in the bound registry.

        Values carry over on a rebind (e.g. when an ``AsyncSearchServer``
        injects its registry into an engine that already served traffic),
        so the stats view never appears to jump backwards.
        """
        registry = self.metrics
        scope = registry.scope("engine")
        self._obs_labels = scope
        for attr, metric, help_text in self._COUNTERS:
            fresh = registry.counter(metric, help_text, scope)
            old = getattr(self, attr, None)
            if old is not None:
                fresh.value = old.value
            setattr(self, attr, fresh)
        for attr, metric, help_text in (
            ("_last_batch_ms", "engine_last_batch_ms", "Wall time of the last batch"),
            (
                "_last_batch_queries",
                "engine_last_batch_queries",
                "Queries in the last batch",
            ),
        ):
            fresh = registry.gauge(metric, help_text, scope)
            old = getattr(self, attr, None)
            if old is not None:
                fresh.value = old.value
            setattr(self, attr, fresh)
        # Shards publish into the same registry (PM-LSH's probe counters,
        # the baselines' overfetch path) regardless of backend.
        for shard in getattr(self, "_shards", ()):  # may precede first fit
            shard.metrics = registry
        pool = getattr(self, "_worker_pool", None)  # may precede __init__ tail
        if pool is not None:
            pool.rebind_metrics(registry, scope)

    def _reset_counters(self) -> None:
        self.metrics  # bind the default registry (and instruments) if needed
        for attr, _, _ in self._COUNTERS:
            getattr(self, attr).reset()
        self._last_batch_ms.set(0.0)
        self._last_batch_queries.set(0)
        self._last_shard_ms: List[float] = [0.0] * self.num_shards
        self._last_shard_candidates: List[float] = [float("nan")] * self.num_shards
        self._last_shard_tree_nodes: List[float] = [float("nan")] * self.num_shards

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_shard(self, shard_seed: RandomState) -> ANNIndex:
        params = dict(self._backend_params)
        params.pop("seed", None)  # only derived sub-seeds reach the shards
        accepts_seed = "seed" in inspect.signature(self._backend_cls.__init__).parameters
        if accepts_seed:
            params["seed"] = shard_seed
        return self._backend_cls(**params)

    def fit(self, data: np.ndarray) -> "ShardedIndex":
        # Validate shardability BEFORE the base class rebinds self.data, so
        # a rejected refit leaves a healthy engine fully untouched.
        if self._check_data(data).shape[0] < self.num_shards:
            raise ValueError(
                f"cannot stripe {np.asarray(data).shape[0]} points over "
                f"{self.num_shards} shards; every shard needs at least one point"
            )
        super().fit(data)
        return self

    def _fit(self) -> None:
        """Stripe the dataset over S shards and fit each backend."""
        n = self.n
        # Independent per-shard sub-streams from the master seed (a "seed"
        # in backend_params plays that role instead): a fixed seed fixes
        # every shard, and shards stay decorrelated.
        master = (
            self._backend_params["seed"]
            if "seed" in self._backend_params
            else self._seed
        )
        shard_rngs = spawn_generators(master, self.num_shards)
        self._shards = []
        self._id_maps = []
        for s in range(self.num_shards):
            global_ids = np.arange(s, n, self.num_shards, dtype=np.int64)
            shard = self._make_shard(shard_rngs[s])
            shard.metrics = self.metrics
            shard.fit(self.data[global_ids])
            self._shards.append(shard)
            self._id_maps.append(global_ids)
        self._global_shard = np.arange(n, dtype=np.int64) % self.num_shards
        self._global_local = np.arange(n, dtype=np.int64) // self.num_shards
        self._router.reset([shard.ntotal for shard in self._shards])
        # A refit replaces every shard object, so nothing published into
        # shared memory is current any more — even where the fresh shard's
        # epoch number happens to match the old one.
        self._published_epochs = {}
        self._reset_counters()

    # ------------------------------------------------------------------
    # id mapping
    # ------------------------------------------------------------------

    def locate(self, global_id: int) -> Tuple[int, int]:
        """Map a global id to its ``(shard, local id)`` home."""
        self._require_built()
        gid = int(global_id)
        if not 0 <= gid < self.n:
            raise IndexError(f"global id {gid} out of range [0, {self.n})")
        return int(self._global_shard[gid]), int(self._global_local[gid])

    @property
    def shards(self) -> Tuple[ANNIndex, ...]:
        """The backend indexes, one per shard (read-only view)."""
        return tuple(self._shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(shard.ntotal for shard in self._shards)

    @property
    def shard_live_sizes(self) -> Tuple[int, ...]:
        """Per-shard live counts — what the add() routing balances on."""
        return tuple(shard.nlive for shard in self._shards)

    # ------------------------------------------------------------------
    # dynamic growth
    # ------------------------------------------------------------------

    def _add(self, points: np.ndarray) -> np.ndarray:
        """Route new points to shards; global ids stay append-only.

        The engine keeps the global ``self.data`` view alongside the
        per-shard copies (the ANNIndex contract: ``n``/``d``/``data`` are
        defined by it, and the harness reads it) at the cost of one extra
        dataset copy and an O(ntotal) append per ingest batch — the same
        asymptotics as every backend's own ``add``.
        """
        start = self.n
        count = points.shape[0]
        # Routing balances on LIVE counts — a shard whose rows were mostly
        # tombstoned is genuinely light no matter what its raw ntotal says —
        # while local id positions still append after the raw sizes
        # (deleted local slots are never reused).
        loads = np.asarray([shard.nlive for shard in self._shards], dtype=np.int64)
        sizes = np.asarray([shard.ntotal for shard in self._shards], dtype=np.int64)
        assignment = self._router.route(count, loads)
        local_ids = np.empty(count, dtype=np.int64)
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size == 0:
                continue
            # The shard's own add() re-derives its n-dependent parameters.
            self._shards[s].add(points[rows])
            local_ids[rows] = sizes[s] + np.arange(rows.size, dtype=np.int64)
            self._id_maps[s] = np.concatenate([self._id_maps[s], start + rows])
        self._global_shard = np.concatenate(
            [self._global_shard, assignment.astype(np.int64)]
        )
        self._global_local = np.concatenate([self._global_local, local_ids])
        self._set_data(np.vstack([self.data, points]))
        self._points_added.inc(count)
        return np.arange(start, start + count, dtype=np.int64)

    # ------------------------------------------------------------------
    # lifecycle: deletes and compaction
    # ------------------------------------------------------------------

    def _on_delete(self, ids: np.ndarray) -> None:
        """Forward tombstoned global ids to their owning shards.

        Each shard marks (and filters) its own local tombstones; the
        engine's global set — already updated by :meth:`delete` — keeps
        ``nlive`` and the base fallbacks consistent.
        """
        owners = self._global_shard[ids]
        for s in range(self.num_shards):
            local = self._global_local[ids[owners == s]]
            if local.size:
                self._shards[s].delete(local)
        self._points_deleted.inc(int(ids.size))

    def compact(self) -> CompactionResult:
        """Shard-independent compaction: each shard re-fits over its own
        live rows, no cross-shard data movement.

        Surviving global ids renumber densely (in their original order);
        each shard keeps exactly its surviving points, so the per-shard
        rebuilds are independent and the routing tables re-base on the new
        live counts.  If some shard lost *every* point, the engine instead
        re-stripes the live rows across all shards (a full re-fit) so no
        shard is left empty.
        """
        self._require_built()
        live = self.live_ids()
        if live.size < self.num_shards:
            raise ValueError(
                f"{self.name}: cannot compact {live.size} live points over "
                f"{self.num_shards} shards; every shard needs at least one point"
            )
        before = self.ntotal
        removed = self.num_tombstones
        if removed == 0 or any(shard.nlive < 1 for shard in self._shards):
            # Nothing shard-local to reclaim, or a shard would re-fit
            # empty: re-stripe the live rows across all shards instead.
            self.fit(self.data[live])
        else:
            survivors: List[np.ndarray] = []
            for s, shard in enumerate(self._shards):
                # Capture the shard's surviving global ids (in local order)
                # BEFORE its compact() clears the local tombstone set.
                survivors.append(self._id_maps[s][shard.live_ids()])
                shard.compact()
            id_map = dense_id_map(live, before)
            self._id_maps = [id_map[gids] for gids in survivors]
            self._global_shard = np.empty(live.size, dtype=np.int64)
            self._global_local = np.empty(live.size, dtype=np.int64)
            for s, gids in enumerate(self._id_maps):
                self._global_shard[gids] = s
                self._global_local[gids] = np.arange(gids.size, dtype=np.int64)
            self._set_data(self.data[live])
            self._tombstones = TombstoneSet()
            self._fitted_n = self.n
            self._index_epoch += 1
            self._router.reset([shard.nlive for shard in self._shards])
        self._compactions.inc()
        return CompactionResult(
            id_map=dense_id_map(live, before),
            removed=removed,
            before_ntotal=before,
            after_ntotal=self.ntotal,
            epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Single-query path: a one-row batch through the same fan-out."""
        self._require_built()
        q = self._validate_query(q, k)
        return self._run_knn(q[None, :], Knn(k=k))[0]

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.num_workers, self.num_shards),
                thread_name_prefix="repro-shard",
            )
        return self._executor

    @property
    def pool_backend(self) -> str:
        """The fan-out flavour: ``"thread"`` or ``"process"``."""
        return self._pool_backend

    @property
    def worker_pool(self):
        """The live :class:`~repro.parallel.pool.WorkerPool`, or None when
        the engine runs on threads / has not served a process batch yet."""
        return self._worker_pool

    def start_pool(self):
        """Start the process pool and publish every shard snapshot now.

        Implicit before every process-backend batch; calling it
        explicitly warms the pool from the owning thread — do this before
        handing the engine to an async server when the start method is
        ``fork`` (forking from a worker thread is best avoided).
        """
        self._require_built()
        if self._pool_backend != "process":
            raise RuntimeError(
                f"{self.name}: start_pool() needs pool_backend='process' "
                f"(this engine runs {self._pool_backend!r} fan-out)"
            )
        return self._sync_pool()

    def _sync_pool(self):
        """The epoch re-attach protocol: make the pool match the shards.

        Starts the pool on first use, then (re)publishes every shard
        whose epoch differs from the last snapshot published for it —
        after ``add``/``delete``/``compact`` bumped it, or after a refit
        cleared the table.  Workers re-attach on receipt, and the old
        segment is unlinked only after they acknowledged.
        """
        if self._worker_pool is None:
            from repro.parallel.pool import WorkerPool

            self._worker_pool = WorkerPool(
                min(self.num_workers, self.num_shards),
                mp_context=self._mp_context,
                registry=self.metrics,
                labels=self._obs_labels,
            ).start()
            self._published_epochs = {}
        for s, shard in enumerate(self._shards):
            if self._published_epochs.get(s) != shard.epoch:
                self._worker_pool.publish(s, shard, registry_name=self._backend_name)
                self._published_epochs[s] = shard.epoch
        return self._worker_pool

    def close(self) -> None:
        """Shut down the fan-out pools (idempotent; the index stays usable —
        thread and process pools are both recreated on the next search).

        Covers the thread executor *and* the process worker pool: workers
        get a clean stop, and every shared-memory segment is unlinked —
        nothing is left for a ``/dev/shm`` leak check to find.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
            self._published_epochs = {}

    def __del__(self) -> None:  # best-effort cleanup; never raises
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass
        try:
            pool = getattr(self, "_worker_pool", None)
            if pool is not None:  # no waiting at interpreter exit
                pool.terminate()
        except Exception:
            pass

    def _fan_out_process(
        self, kind: str, payload: Dict[str, Any]
    ) -> Tuple[List[Any], List[float]]:
        """Run one job round through the worker pool, in shard order.

        The per-shard wall times come from the workers' own clocks; the
        round itself appears as a single ``process_fan_out`` span under a
        sampled trace (worker-side spans cannot join a parent-process
        trace — the per-shard timings in the result stats stand in).
        """
        pool = self._sync_pool()
        trace = current_trace()
        if trace is not None:
            with trace.span(
                "process_fan_out", workers=pool.num_workers, shards=self.num_shards
            ):
                outcome = pool.run(kind, payload)
        else:
            outcome = pool.run(kind, payload)
        results = [outcome[s][0] for s in range(self.num_shards)]
        shard_ms = [outcome[s][1] for s in range(self.num_shards)]
        return results, shard_ms

    def _fan_out(
        self, job: Callable[[ANNIndex], T]
    ) -> Tuple[List[T], List[float]]:
        """Run *job* on every shard (worker pool when configured), returning
        per-shard results and wall times in shard order.

        The calling thread's active trace (if any) is carried into the
        pool workers, each shard's work wrapped in a ``shard_search``
        span anchored under the caller's open span — so a sampled
        request's tree shows every shard's probe nested in place.
        """
        trace = current_trace()

        def timed(item: Tuple[int, ANNIndex]) -> Tuple[T, float]:
            idx, shard = item
            start = time.perf_counter()
            if trace is not None:
                with use_trace(trace), trace.span("shard_search", shard=idx):
                    result = job(shard)
            else:
                result = job(shard)
            return result, (time.perf_counter() - start) * 1e3

        items = list(enumerate(self._shards))
        parallel = min(self.num_workers, self.num_shards) > 1
        if trace is not None:
            with trace.anchored(trace.current_span()):
                if parallel:
                    outcomes = list(self._pool().map(timed, items))
                else:
                    outcomes = [timed(item) for item in items]
        elif parallel:
            outcomes = list(self._pool().map(timed, items))
        else:
            outcomes = [timed(item) for item in items]
        return [result for result, _ in outcomes], [elapsed for _, elapsed in outcomes]

    def _record_batch(
        self,
        num_queries: int,
        wall_ms: float,
        shard_ms: Sequence[float],
        shard_stats_batches: Sequence,
    ) -> None:
        self._batches_served.inc()
        self._queries_served.inc(num_queries)
        self._search_time_ms.inc(wall_ms)
        self._last_batch_ms.set(wall_ms)
        self._last_batch_queries.set(num_queries)
        self._last_shard_ms = list(shard_ms)
        self._last_shard_candidates = [
            float(batch.stats.get("candidates", float("nan")))
            for batch in shard_stats_batches
        ]
        # Flat-traversal backends report their per-query tree work; the
        # engine surfaces it per shard (NaN when the backend has no tree).
        self._last_shard_tree_nodes = [
            float(batch.stats.get("tree_nodes", float("nan")))
            for batch in shard_stats_batches
        ]

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Fan the batch out to every shard, then merge the local top-k.

        The spec travels to the shards verbatim apart from k, which is
        clamped to each shard's cardinality — so per-query runtime knobs
        (budget, c) apply inside every shard.
        """
        wall_start = time.perf_counter()

        # The per-shard semantics (LIVE-count clamp, empty block for a dead
        # shard) live in repro.parallel.jobs so the thread closures here and
        # the process workers execute literally the same code.
        if self._pool_backend == "process":
            shard_batches, shard_ms = self._fan_out_process(
                "knn", {"queries": queries, "spec": spec}
            )
        else:
            shard_batches, shard_ms = self._fan_out(
                lambda shard: shard_knn(shard, queries, spec)
            )

        trace = current_trace()
        merge_start = time.perf_counter()
        if trace is not None:
            with trace.span("merge", num_shards=self.num_shards, k=spec.k):
                merged = merge_shard_results(shard_batches, self._id_maps, spec.k)
        else:
            merged = merge_shard_results(shard_batches, self._id_maps, spec.k)
        merge_ms = (time.perf_counter() - merge_start) * 1e3
        wall_ms = (time.perf_counter() - wall_start) * 1e3

        num_queries = queries.shape[0]
        self._record_batch(num_queries, wall_ms, shard_ms, shard_batches)
        merged.stats.update(
            {
                "num_shards": float(self.num_shards),
                "num_workers": float(min(self.num_workers, self.num_shards)),
                "shard_time_ms_max": float(np.max(shard_ms)),
                "shard_time_ms_mean": float(np.mean(shard_ms)),
                "merge_time_ms": merge_ms,
                "batch_time_ms": wall_ms,
                "batch_qps": num_queries / (wall_ms / 1e3) if wall_ms > 0 else 0.0,
            }
        )
        return merged

    def _run_range(self, queries: np.ndarray, spec: Range) -> RangeResult:
        """Fan a range batch out to every shard and merge the ragged answers.

        Every shard match survives (there is no k cut), so the merge is a
        per-query concatenation re-sorted by ``(distance, global id)`` —
        deterministic across shard and worker counts.
        """
        wall_start = time.perf_counter()
        if self._pool_backend == "process":
            shard_results, shard_ms = self._fan_out_process(
                "range", {"queries": queries, "spec": spec}
            )
        else:
            shard_results, shard_ms = self._fan_out(
                lambda shard: shard_range(shard, queries, spec)
            )

        trace = current_trace()
        merge_start = time.perf_counter()
        if trace is not None:
            with trace.span("merge", num_shards=self.num_shards):
                merged = merge_shard_range_results(shard_results, self._id_maps)
        else:
            merged = merge_shard_range_results(shard_results, self._id_maps)
        merge_ms = (time.perf_counter() - merge_start) * 1e3
        wall_ms = (time.perf_counter() - wall_start) * 1e3

        num_queries = queries.shape[0]
        self._record_batch(num_queries, wall_ms, shard_ms, shard_results)
        self._range_queries_served.inc(num_queries)
        merged.stats.update(
            {
                "num_shards": float(self.num_shards),
                "num_workers": float(min(self.num_workers, self.num_shards)),
                "shard_time_ms_max": float(np.max(shard_ms)),
                "shard_time_ms_mean": float(np.mean(shard_ms)),
                "merge_time_ms": merge_ms,
                "batch_time_ms": wall_ms,
                "batch_qps": num_queries / (wall_ms / 1e3) if wall_ms > 0 else 0.0,
            }
        )
        return merged

    def _closest_pairs(self, m: int, budget: int | None = None) -> ClosestPairResult:
        """Distributed closest-pair: intra-shard CP + cross-shard sweep.

        1. Every shard answers its own m closest pairs (parallel fan-out);
           translated to global ids these are the intra-shard candidates.
        2. Let δ be the m-th best intra-shard distance.  Any global
           top-m pair not seen yet must *cross* shards and be closer than
           δ, so for every shard pair (s, t), s < t, shard t is
           range-queried with shard s's points at radius δ — recovering
           exactly the cross-shard pairs within δ.
        3. Intra and cross candidates merge by ``(distance, i, j)``.

        With exact shards every step is exact, so the result equals the
        single-index answer; with LSH shards both stages inherit the
        backend's approximation guarantee.  When the shards together hold
        fewer than m intra pairs (tiny shards), the engine falls back to
        the exact self-join over the global dataset.
        """
        self._closest_pair_calls.inc()

        if self._pool_backend == "process":
            intra_results, _ = self._fan_out_process("cp", {"m": m, "budget": budget})
        else:
            intra_results, _ = self._fan_out(
                lambda shard: shard_closest_pairs(shard, m, budget)
            )
        pair_blocks: List[np.ndarray] = []
        dist_blocks: List[np.ndarray] = []
        for s, result in enumerate(intra_results):
            if len(result) == 0:
                continue
            global_pairs = self._id_maps[s][result.pairs]
            global_pairs = np.sort(global_pairs, axis=1)
            pair_blocks.append(global_pairs)
            dist_blocks.append(result.distances)
        intra_pairs = (
            np.concatenate(pair_blocks)
            if pair_blocks
            else np.empty((0, 2), dtype=np.int64)
        )
        intra_dists = (
            np.concatenate(dist_blocks)
            if dist_blocks
            else np.empty(0, dtype=np.float64)
        )
        intra_pairs, intra_dists = sort_pairs(intra_pairs, intra_dists)
        if intra_dists.size < m:
            # Not enough intra-shard pairs to bound the sweep radius; the
            # exact global self-join is the only correct answer.
            result = super()._closest_pairs(m, budget=budget)
            result.stats["cross_shard_fallback"] = 1.0
            return result
        delta = float(intra_dists[m - 1])
        # Range(r) needs r > 0; the tiny floor keeps distance-0 duplicate
        # pairs discoverable without admitting anything else.
        sweep_radius = max(delta, float(np.finfo(np.float64).tiny))

        # One sweep job per TARGET shard (all earlier shards' points against
        # it), so the jobs parallelise through the worker pool while each
        # shard object still serves exactly one querying thread — the same
        # concurrency contract as the kNN/range fan-outs.  Source points are
        # each earlier shard's LIVE rows only (the target shard filters its
        # own tombstones inside range_search); the (source, local ids)
        # bookkeeping stays in the parent either way.
        targets = list(range(1, self.num_shards))
        sweep_blocks: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {}
        for t in targets:
            if self._shards[t].nlive == 0:
                continue
            blocks = [
                (s, src_local, self._shards[s].data[src_local])
                for s in range(t)
                for src_local in (self._shards[s].live_ids(),)
                if src_local.size
            ]
            if blocks:
                sweep_blocks[t] = blocks

        def rejoin(t: int, swept: List[Tuple[int, RangeResult]]):
            return [
                (s, src_local, result)
                for (s, src_local, _), (_, result) in zip(sweep_blocks[t], swept)
            ]

        if self._pool_backend == "process":
            payload = {
                "targets": {
                    t: [(s, points) for s, _, points in blocks]
                    for t, blocks in sweep_blocks.items()
                },
                "radius": sweep_radius,
                "budget": budget,
            }
            outcome = self._sync_pool().run("sweep", payload) if sweep_blocks else {}
            swept_lists = [
                rejoin(t, outcome[t][0]) if t in outcome else [] for t in targets
            ]
        else:

            def sweep_target(t: int) -> List[Tuple[int, np.ndarray, RangeResult]]:
                blocks = sweep_blocks.get(t, [])
                swept = shard_sweep(
                    self._shards[t],
                    [(s, points) for s, _, points in blocks],
                    sweep_radius,
                    budget,
                )
                return rejoin(t, swept) if blocks else []

            if min(self.num_workers, self.num_shards) > 1 and len(targets) > 1:
                swept_lists = list(self._pool().map(sweep_target, targets))
            else:
                swept_lists = [sweep_target(t) for t in targets]

        cross_pairs: List[np.ndarray] = []
        cross_dists: List[np.ndarray] = []
        verified = 0
        for t, sweeps in zip(targets, swept_lists):
            for s, src_local, swept in sweeps:
                verified += int(swept.lims[-1])
                gid_s = np.repeat(self._id_maps[s][src_local], swept.counts)
                gid_t = self._id_maps[t][swept.ids]
                if gid_s.size == 0:
                    continue
                pairs = np.column_stack(
                    [np.minimum(gid_s, gid_t), np.maximum(gid_s, gid_t)]
                )
                cross_pairs.append(pairs)
                cross_dists.append(swept.distances)

        all_pairs = np.concatenate([intra_pairs] + cross_pairs)
        all_dists = np.concatenate([intra_dists] + cross_dists)
        best_pairs, best_dists = sort_pairs(all_pairs, all_dists, m)
        stats = {
            "intra_pairs": float(intra_dists.size),
            "cross_pairs": float(sum(p.shape[0] for p in cross_pairs)),
            "sweep_radius": delta,
            "verified": float(intra_dists.size + verified),
        }
        return ClosestPairResult(pairs=best_pairs, distances=best_dists, stats=stats)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def refresh_metrics(self) -> None:
        """Publish the engine's point-in-time values into the registry.

        Lifetime counters are written inline by the query paths; the
        derived and sampled values (sizes, QPS, per-shard last-batch
        work) are gauges refreshed here — called by :meth:`stats` and by
        the serving front-end before an export, so a scrape reflects the
        same numbers the stats table prints.
        """
        registry, scope = self.metrics, self._obs_labels
        gauge = lambda name, help: registry.gauge(name, help, scope)  # noqa: E731
        gauge("engine_ntotal", "Stored vectors, dead rows included").set(self.ntotal)
        gauge("engine_nlive", "Live vectors").set(self.nlive)
        gauge("engine_tombstones", "Outstanding tombstones").set(self.num_tombstones)
        gauge("engine_num_shards", "Data partitions").set(self.num_shards)
        gauge("engine_num_workers", "Fan-out worker threads").set(
            min(self.num_workers, self.num_shards)
        )
        gauge("engine_process_pool", "1 when the fan-out runs worker processes").set(
            1.0 if self._pool_backend == "process" else 0.0
        )
        gauge("engine_pool_workers_alive", "Live process-pool workers").set(
            self._worker_pool.num_workers
            if self._worker_pool is not None and self._worker_pool.running
            else 0
        )
        search_ms = self._search_time_ms.value
        gauge("engine_qps", "Lifetime queries per second of search wall time").set(
            self._queries_served.value / (search_ms / 1e3) if search_ms > 0 else 0.0
        )
        last_ms = self._last_batch_ms.value
        gauge("engine_last_batch_qps", "Throughput of the last batch").set(
            self._last_batch_queries.value / (last_ms / 1e3) if last_ms > 0 else 0.0
        )
        for s, shard in enumerate(self._shards):
            labels = {**scope, "shard": str(s)}
            registry.gauge(
                "engine_shard_search_ms", "Shard wall time in the last batch", labels
            ).set(self._last_shard_ms[s])
            registry.gauge(
                "engine_shard_candidates", "Candidates per query, last batch", labels
            ).set(self._last_shard_candidates[s])
            registry.gauge(
                "engine_shard_tree_nodes", "Tree nodes per query, last batch", labels
            ).set(self._last_shard_tree_nodes[s])
            registry.gauge("engine_shard_nlive", "Live points on the shard", labels).set(
                shard.nlive
            )

    def stats(self) -> EngineStats:
        """Current serving statistics (per-shard table + lifetime QPS).

        A view over the metrics registry: every counter field is read
        back from its instrument (gauges refreshed first), so this
        snapshot and ``registry.to_json()`` can never disagree.
        """
        self._require_built()
        self.refresh_metrics()
        shard_stats = tuple(
            ShardStats(
                shard=s,
                backend=self._backend_name,
                ntotal=shard.ntotal,
                repr=repr(shard),
                search_ms=self._last_shard_ms[s],
                mean_candidates=self._last_shard_candidates[s],
                mean_tree_nodes=self._last_shard_tree_nodes[s],
                nlive=shard.nlive,
            )
            for s, shard in enumerate(self._shards)
        )
        return EngineStats(
            num_shards=self.num_shards,
            num_workers=min(self.num_workers, self.num_shards),
            router=self._router.policy,
            pool_backend=self._pool_backend,
            ntotal=self.ntotal,
            batches_served=int(self._batches_served.value),
            queries_served=int(self._queries_served.value),
            points_added=int(self._points_added.value),
            search_time_ms=self._search_time_ms.value,
            last_batch_ms=self._last_batch_ms.value,
            last_batch_queries=int(self._last_batch_queries.value),
            range_queries_served=int(self._range_queries_served.value),
            closest_pair_calls=int(self._closest_pair_calls.value),
            shards=shard_stats,
            nlive=self.nlive,
            tombstones=self.num_tombstones,
            points_deleted=int(self._points_deleted.value),
            compactions=int(self._compactions.value),
        )

    def __repr__(self) -> str:
        base = (
            f"{type(self).__name__}(backend={self._backend_name!r}, "
            f"shards={self.num_shards}, workers={self.num_workers}"
            + (", process" if self._pool_backend == "process" else "")
        )
        if self.data is None:
            return base + ", unfitted)"
        state = "built" if self._built else "unbuilt"
        return base + f", d={self.d}, ntotal={self.ntotal}, {state})"


@register_index("process-sharded", "process-engine")
class ProcessShardedIndex(ShardedIndex):
    """:class:`ShardedIndex` pinned to the process-pool fan-out.

    Sugar for ``ShardedIndex(..., pool_backend="process")`` under its own
    registry name, so harness configs and benchmarks can select the
    shared-memory engine by name:

    >>> import repro
    >>> engine = repro.create_index("process-sharded", num_shards=4)   # doctest: +SKIP

    Shard backends must implement the ``to_shm()/from_shm()`` snapshot
    protocol (PM-LSH — the default — and the exact oracle do).
    """

    def __init__(
        self,
        *,
        backend: str | type = "pm-lsh",
        num_shards: int = 4,
        num_workers: int | None = None,
        router: str | ShardRouter = "round-robin",
        backend_params: Mapping[str, Any] | None = None,
        seed: RandomState = None,
        mp_context: str | None = None,
    ) -> None:
        super().__init__(
            backend=backend,
            num_shards=num_shards,
            num_workers=num_workers,
            router=router,
            backend_params=backend_params,
            seed=seed,
            pool_backend="process",
            mp_context=mp_context,
        )
