"""ShardedIndex: a multi-worker serving layer over the unified index API.

The engine partitions the dataset across S shards, each an independent
registry-constructed :class:`~repro.baselines.base.ANNIndex` (PM-LSH by
default, but any registered algorithm works as a backend).  A query batch
fans out to every shard — through a thread pool when more than one worker
is configured; NumPy's GEMM-heavy shard searches drop the GIL, so shards
genuinely overlap on multi-core hosts — and the per-shard top-k answers
are merged into one global :class:`BatchResult` through a stable
global → (shard, local) id mapping.

The engine is itself an :class:`ANNIndex`, registered as ``"sharded"``:

>>> import repro
>>> engine = repro.create_index("sharded", backend="pm-lsh", num_shards=4)
>>> engine.fit(data).search(queries, k=10)            # doctest: +SKIP

so the evaluation harness, the benchmarks and the examples drive it with
no special-casing.  ``add()`` routes new points to shards round-robin (or
to the least-loaded shard), exercising each backend's n-dependent
parameter re-derivation, while global ids stay append-only and stable.
"""

from __future__ import annotations

import inspect
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult, QueryResult
from repro.engine.merge import merge_shard_results
from repro.engine.router import ShardRouter, make_router
from repro.engine.stats import EngineStats, ShardStats
from repro.registry import get_index_class, register_index
from repro.utils.rng import RandomState, spawn_generators


def _resolve_backend(backend: str | type) -> type:
    """Accept a registry name or an ANNIndex subclass."""
    if isinstance(backend, str):
        return get_index_class(backend)
    if isinstance(backend, type) and issubclass(backend, ANNIndex):
        return backend
    raise TypeError(
        f"backend must be a registry name or an ANNIndex subclass, got {backend!r}"
    )


@register_index("sharded", "engine", "sharded-index")
class ShardedIndex(ANNIndex):
    """Data-partitioned serving engine over any registered backend.

    Parameters
    ----------
    backend:
        Registry name (e.g. ``"pm-lsh"``, ``"exact"``) or ``ANNIndex``
        subclass used for every shard.
    num_shards:
        Number of data partitions S; ``fit`` stripes the dataset over them
        (row i lands on shard i mod S), so cluster structure spreads evenly.
    num_workers:
        Thread-pool width for the per-shard fan-out.  Defaults to
        ``min(num_shards, cpu_count)``; 1 runs shards serially in the
        calling thread.
    router:
        ``"round-robin"`` (default) or ``"least-loaded"`` — the
        :meth:`add` routing policy (see :mod:`repro.engine.router`).
    backend_params:
        Keyword arguments forwarded to every shard's constructor.  A
        ``"seed"`` entry here takes the master-seed role below (it is
        never passed through verbatim — shards must stay decorrelated).
    seed:
        Master seed; each shard receives an independent sub-seed derived
        from it (when the backend accepts one), so a fixed engine seed
        fixes every shard.

    Notes
    -----
    Thread safety: the parallelism lives *inside* ``search`` (one batch
    fans out across the worker pool).  The engine object itself follows
    the same contract as every other :class:`ANNIndex`: one caller thread
    at a time — serve concurrent clients by batching their queries, not
    by sharing the engine across caller threads.
    """

    name = "ShardedIndex"

    def __init__(
        self,
        data: np.ndarray | None = None,
        *,
        backend: str | type = "pm-lsh",
        num_shards: int = 4,
        num_workers: int | None = None,
        router: str | ShardRouter = "round-robin",
        backend_params: Mapping[str, Any] | None = None,
        seed: RandomState = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._backend_cls = _resolve_backend(backend)
        self._backend_name = getattr(
            self._backend_cls, "registry_name", self._backend_cls.__name__
        )
        self.num_shards = int(num_shards)
        self.num_workers = int(
            num_workers
            if num_workers is not None
            else max(1, min(self.num_shards, os.cpu_count() or 1))
        )
        self._backend_params: Dict[str, Any] = dict(backend_params or {})
        self._seed = seed
        self._router = make_router(router)
        self.name = f"Sharded[{self._backend_name}x{self.num_shards}]"

        self._shards: List[ANNIndex] = []
        #: per shard: local id -> global id (append-only after fit).
        self._id_maps: List[np.ndarray] = []
        #: per global id: owning shard / local id within it (append-only).
        self._global_shard = np.empty(0, dtype=np.int64)
        self._global_local = np.empty(0, dtype=np.int64)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._reset_counters()
        super().__init__(data)  # legacy ctor-data shim lives in the base

    def _reset_counters(self) -> None:
        self._batches_served = 0
        self._queries_served = 0
        self._points_added = 0
        self._search_time_ms = 0.0
        self._last_batch_ms = 0.0
        self._last_batch_queries = 0
        self._last_shard_ms: List[float] = [0.0] * self.num_shards
        self._last_shard_candidates: List[float] = [float("nan")] * self.num_shards

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_shard(self, shard_seed: RandomState) -> ANNIndex:
        params = dict(self._backend_params)
        params.pop("seed", None)  # only derived sub-seeds reach the shards
        accepts_seed = "seed" in inspect.signature(self._backend_cls.__init__).parameters
        if accepts_seed:
            params["seed"] = shard_seed
        return self._backend_cls(**params)

    def fit(self, data: np.ndarray) -> "ShardedIndex":
        # Validate shardability BEFORE the base class rebinds self.data, so
        # a rejected refit leaves a healthy engine fully untouched.
        if self._check_data(data).shape[0] < self.num_shards:
            raise ValueError(
                f"cannot stripe {np.asarray(data).shape[0]} points over "
                f"{self.num_shards} shards; every shard needs at least one point"
            )
        super().fit(data)
        return self

    def _fit(self) -> None:
        """Stripe the dataset over S shards and fit each backend."""
        n = self.n
        if n < self.num_shards:  # reachable via the legacy ctor-data path
            raise ValueError(
                f"cannot stripe {n} points over {self.num_shards} shards; "
                "every shard needs at least one point"
            )
        # Independent per-shard sub-streams from the master seed (a "seed"
        # in backend_params plays that role instead): a fixed seed fixes
        # every shard, and shards stay decorrelated.
        master = (
            self._backend_params["seed"]
            if "seed" in self._backend_params
            else self._seed
        )
        shard_rngs = spawn_generators(master, self.num_shards)
        self._shards = []
        self._id_maps = []
        for s in range(self.num_shards):
            global_ids = np.arange(s, n, self.num_shards, dtype=np.int64)
            shard = self._make_shard(shard_rngs[s])
            shard.fit(self.data[global_ids])
            self._shards.append(shard)
            self._id_maps.append(global_ids)
        self._global_shard = np.arange(n, dtype=np.int64) % self.num_shards
        self._global_local = np.arange(n, dtype=np.int64) // self.num_shards
        self._router.reset([shard.ntotal for shard in self._shards])
        self._reset_counters()

    # ------------------------------------------------------------------
    # id mapping
    # ------------------------------------------------------------------

    def locate(self, global_id: int) -> Tuple[int, int]:
        """Map a global id to its ``(shard, local id)`` home."""
        self._require_built()
        gid = int(global_id)
        if not 0 <= gid < self.n:
            raise IndexError(f"global id {gid} out of range [0, {self.n})")
        return int(self._global_shard[gid]), int(self._global_local[gid])

    @property
    def shards(self) -> Tuple[ANNIndex, ...]:
        """The backend indexes, one per shard (read-only view)."""
        return tuple(self._shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(shard.ntotal for shard in self._shards)

    # ------------------------------------------------------------------
    # dynamic growth
    # ------------------------------------------------------------------

    def _add(self, points: np.ndarray) -> np.ndarray:
        """Route new points to shards; global ids stay append-only.

        The engine keeps the global ``self.data`` view alongside the
        per-shard copies (the ANNIndex contract: ``n``/``d``/``data`` are
        defined by it, and the harness reads it) at the cost of one extra
        dataset copy and an O(ntotal) append per ingest batch — the same
        asymptotics as every backend's own ``add``.
        """
        start = self.n
        count = points.shape[0]
        loads = np.asarray([shard.ntotal for shard in self._shards], dtype=np.int64)
        assignment = self._router.route(count, loads)
        local_ids = np.empty(count, dtype=np.int64)
        for s in range(self.num_shards):
            rows = np.flatnonzero(assignment == s)
            if rows.size == 0:
                continue
            # The shard's own add() re-derives its n-dependent parameters.
            self._shards[s].add(points[rows])
            local_ids[rows] = loads[s] + np.arange(rows.size, dtype=np.int64)
            self._id_maps[s] = np.concatenate([self._id_maps[s], start + rows])
        self._global_shard = np.concatenate(
            [self._global_shard, assignment.astype(np.int64)]
        )
        self._global_local = np.concatenate([self._global_local, local_ids])
        self._set_data(np.vstack([self.data, points]))
        self._points_added += count
        return np.arange(start, start + count, dtype=np.int64)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Single-query path: a one-row batch through the same fan-out."""
        self._require_built()
        q = self._validate_query(q, k)
        return self._search(q[None, :], k)[0]

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.num_workers, self.num_shards),
                thread_name_prefix="repro-shard",
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the index stays usable —
        the pool is recreated on the next parallel search)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # best-effort cleanup; never raises
        try:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
        except Exception:
            pass

    def _search(self, queries: np.ndarray, k: int) -> BatchResult:
        """Fan the batch out to every shard, then merge the local top-k."""
        wall_start = time.perf_counter()

        def shard_job(shard: ANNIndex) -> Tuple[BatchResult, float]:
            start = time.perf_counter()
            result = shard.search(queries, min(k, shard.ntotal))
            return result, (time.perf_counter() - start) * 1e3

        if min(self.num_workers, self.num_shards) > 1:
            outcomes = list(self._pool().map(shard_job, self._shards))
        else:
            outcomes = [shard_job(shard) for shard in self._shards]
        shard_batches = [batch for batch, _ in outcomes]
        shard_ms = [elapsed for _, elapsed in outcomes]

        merge_start = time.perf_counter()
        merged = merge_shard_results(shard_batches, self._id_maps, k)
        merge_ms = (time.perf_counter() - merge_start) * 1e3
        wall_ms = (time.perf_counter() - wall_start) * 1e3

        num_queries = queries.shape[0]
        self._batches_served += 1
        self._queries_served += num_queries
        self._search_time_ms += wall_ms
        self._last_batch_ms = wall_ms
        self._last_batch_queries = num_queries
        self._last_shard_ms = list(shard_ms)
        self._last_shard_candidates = [
            float(batch.stats.get("candidates", float("nan")))
            for batch in shard_batches
        ]

        merged.stats.update(
            {
                "num_shards": float(self.num_shards),
                "num_workers": float(min(self.num_workers, self.num_shards)),
                "shard_time_ms_max": float(np.max(shard_ms)),
                "shard_time_ms_mean": float(np.mean(shard_ms)),
                "merge_time_ms": merge_ms,
                "batch_time_ms": wall_ms,
                "batch_qps": num_queries / (wall_ms / 1e3) if wall_ms > 0 else 0.0,
            }
        )
        return merged

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def stats(self) -> EngineStats:
        """Current serving statistics (per-shard table + lifetime QPS)."""
        self._require_built()
        shard_stats = tuple(
            ShardStats(
                shard=s,
                backend=self._backend_name,
                ntotal=shard.ntotal,
                repr=repr(shard),
                search_ms=self._last_shard_ms[s],
                mean_candidates=self._last_shard_candidates[s],
            )
            for s, shard in enumerate(self._shards)
        )
        return EngineStats(
            num_shards=self.num_shards,
            num_workers=min(self.num_workers, self.num_shards),
            router=self._router.policy,
            ntotal=self.ntotal,
            batches_served=self._batches_served,
            queries_served=self._queries_served,
            points_added=self._points_added,
            search_time_ms=self._search_time_ms,
            last_batch_ms=self._last_batch_ms,
            last_batch_queries=self._last_batch_queries,
            shards=shard_stats,
        )

    def __repr__(self) -> str:
        base = (
            f"{type(self).__name__}(backend={self._backend_name!r}, "
            f"shards={self.num_shards}, workers={self.num_workers}"
        )
        if self.data is None:
            return base + ", unfitted)"
        state = "built" if self._built else "unbuilt"
        return base + f", d={self.d}, ntotal={self.ntotal}, {state})"
