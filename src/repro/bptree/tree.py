"""An in-memory B+-tree over float keys with integer payloads.

Design notes
------------
* Keys are float64 projections; duplicates are allowed (several points can
  share a hash value), so the tree is a sorted *multimap*.
* Leaves form a doubly-linked chain, enabling the two access patterns QALSH
  needs: a one-shot ``range_search(lo, hi)`` and a :class:`Cursor` that
  starts at the query's position and walks left/right incrementally as the
  virtual-rehashing window grows.
* Nodes hold their keys in Python lists managed with ``bisect``; for the
  cardinalities this library targets that is both simple and fast, and the
  structure (fan-out, splits, chained leaves) is faithful to the on-disk
  original.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: List[float] = []
        self.values: List[int] = []
        self.next: Optional[_Leaf] = None
        self.prev: Optional[_Leaf] = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: List[float] = []
        self.children: List[object] = []


class Cursor:
    """Bidirectional cursor over the leaf chain.

    A cursor sits *between* entries.  ``peek_left`` / ``peek_right`` expose
    the neighbouring ``(key, value)`` pairs without moving; ``move_left`` /
    ``move_right`` consume them.  QALSH holds one cursor per hash table,
    seeded at the query projection, and repeatedly consumes whichever side
    is still inside the current collision window.
    """

    __slots__ = ("_left_leaf", "_left_pos", "_right_leaf", "_right_pos")

    def __init__(self, leaf: Optional[_Leaf], pos: int) -> None:
        # Left side points at the entry just below the cursor; right side at
        # the entry at/above it.  Either may run off the chain (None).
        self._right_leaf = leaf
        self._right_pos = pos
        self._normalize_right()
        if leaf is None:
            self._left_leaf: Optional[_Leaf] = None
            self._left_pos = -1
        else:
            self._left_leaf = leaf
            self._left_pos = pos - 1
            self._normalize_left()

    def _normalize_right(self) -> None:
        while self._right_leaf is not None and self._right_pos >= len(self._right_leaf.keys):
            self._right_leaf = self._right_leaf.next
            self._right_pos = 0

    def _normalize_left(self) -> None:
        while self._left_leaf is not None and self._left_pos < 0:
            self._left_leaf = self._left_leaf.prev
            self._left_pos = len(self._left_leaf.keys) - 1 if self._left_leaf else -1

    def peek_right(self) -> Optional[Tuple[float, int]]:
        if self._right_leaf is None:
            return None
        return (self._right_leaf.keys[self._right_pos], self._right_leaf.values[self._right_pos])

    def peek_left(self) -> Optional[Tuple[float, int]]:
        if self._left_leaf is None:
            return None
        return (self._left_leaf.keys[self._left_pos], self._left_leaf.values[self._left_pos])

    def move_right(self) -> Optional[Tuple[float, int]]:
        entry = self.peek_right()
        if entry is not None:
            self._right_pos += 1
            self._normalize_right()
        return entry

    def move_left(self) -> Optional[Tuple[float, int]]:
        entry = self.peek_left()
        if entry is not None:
            self._left_pos -= 1
            self._normalize_left()
        return entry


class BPlusTree:
    """Sorted multimap ``float key -> int value`` with B+-tree structure.

    Parameters
    ----------
    order:
        Maximum number of keys per node (≥ 3).  Nodes split at
        ``order + 1`` keys into two halves.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise ValueError(f"order must be at least 3, got {order}")
        self.order = order
        self._root: object = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_items(cls, items: Iterable[Tuple[float, int]], order: int = 64) -> "BPlusTree":
        """Bulk-load from ``(key, value)`` pairs (need not be sorted).

        Builds the leaf level directly from the sorted items and stacks inner
        levels on top — O(n log n) for the sort, O(n) for the build.
        """
        pairs = sorted(items, key=lambda kv: kv[0])
        tree = cls(order=order)
        if not pairs:
            return tree
        # Fill leaves at ~ (order+1)//2 ... order utilisation; use a fixed
        # fill just under the maximum so early inserts don't cascade splits.
        fill = max(2, (order * 3) // 4) if len(pairs) > order else len(pairs)
        leaves: List[_Leaf] = []
        for start in range(0, len(pairs), fill):
            leaf = _Leaf()
            chunk = pairs[start : start + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [int(v) for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        # Guard against a dangling tiny final leaf: merge it into the
        # previous one if it underflows drastically (cosmetic only).
        if len(leaves) >= 2 and len(leaves[-1].keys) == 1:
            last = leaves.pop()
            leaves[-1].keys.extend(last.keys)
            leaves[-1].values.extend(last.values)
            leaves[-1].next = None
        tree._size = len(pairs)
        level: List[object] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves[1:]]
        height = 1
        while len(level) > 1:
            next_level: List[object] = []
            next_separators: List[float] = []
            group = max(2, fill)
            for start in range(0, len(level), group):
                inner = _Inner()
                inner.children = level[start : start + group]
                # Separators between the children inside this group; the
                # separator between two adjacent groups bubbles up instead.
                inner.keys = separators[start : start + len(inner.children) - 1]
                next_level.append(inner)
                if start + group < len(level):
                    next_separators.append(separators[start + group - 1])
            level = next_level
            separators = next_separators
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    # ------------------------------------------------------------------
    # basic operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def insert(self, key: float, value: int) -> None:
        """Insert one pair; duplicate keys are kept (insertion goes after
        existing equal keys)."""
        split = self._insert_into(self._root, key, int(value))
        if split is not None:
            separator, right = split
            new_root = _Inner()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert_into(self, node: object, key: float, value: int):
        if isinstance(node, _Leaf):
            pos = bisect.bisect_right(node.keys, key)
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Inner)
        index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_inner(self, inner: _Inner):
        mid = len(inner.keys) // 2
        separator = inner.keys[mid]
        right = _Inner()
        right.keys = inner.keys[mid + 1 :]
        right.children = inner.children[mid + 1 :]
        del inner.keys[mid:]
        del inner.children[mid + 1 :]
        return separator, right

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def _find_leaf(self, key: float) -> Tuple[_Leaf, int]:
        """Leaf and in-leaf position of the first entry with key ≥ *key*.

        The position may equal ``len(leaf.keys)`` when every key in the last
        visited leaf is smaller.
        """
        node = self._root
        while isinstance(node, _Inner):
            index = bisect.bisect_left(node.keys, key)
            # Equal separator keys live in the right subtree after splits
            # with bisect_right insertion, so descend right on equality.
            while index < len(node.keys) and node.keys[index] == key:
                index += 1
            node = node.children[index]
        assert isinstance(node, _Leaf)
        pos = bisect.bisect_left(node.keys, key)
        return node, pos

    def _leftmost_geq(self, key: float) -> Tuple[Optional[_Leaf], int]:
        """First entry with key ≥ *key*, scanning back over equal duplicates
        that may have spilled into earlier leaves."""
        leaf, pos = self._find_leaf(key)
        # Walk back while the previous leaf ends with an equal key.
        current: Optional[_Leaf] = leaf
        while current is not None:
            prev = current.prev
            if pos == 0 and prev is not None and prev.keys and prev.keys[-1] >= key:
                current = prev
                pos = bisect.bisect_left(current.keys, key)
            else:
                break
        if current is not None and pos >= len(current.keys):
            nxt = current.next
            return (nxt, 0) if nxt is not None else (current, pos)
        return current, pos

    def search(self, key: float) -> List[int]:
        """All values stored under exactly *key* (empty list if none)."""
        results: List[int] = []
        leaf, pos = self._leftmost_geq(key)
        while leaf is not None:
            while pos < len(leaf.keys) and leaf.keys[pos] == key:
                results.append(leaf.values[pos])
                pos += 1
            if pos < len(leaf.keys) or leaf.next is None:
                break
            leaf = leaf.next
            pos = 0
            if leaf.keys and leaf.keys[0] != key:
                break
        return results

    def range_search(self, lo: float, hi: float) -> List[Tuple[float, int]]:
        """All ``(key, value)`` pairs with lo ≤ key ≤ hi, in key order."""
        if hi < lo:
            return []
        results: List[Tuple[float, int]] = []
        leaf, pos = self._leftmost_geq(lo)
        while leaf is not None:
            keys = leaf.keys
            while pos < len(keys):
                if keys[pos] > hi:
                    return results
                results.append((keys[pos], leaf.values[pos]))
                pos += 1
            leaf = leaf.next
            pos = 0
        return results

    def cursor(self, key: float) -> Cursor:
        """Cursor positioned between keys < *key* and keys ≥ *key*."""
        leaf, pos = self._leftmost_geq(key)
        if leaf is None:
            # Empty tree.
            return Cursor(None, 0)
        return Cursor(leaf, pos)

    def items(self) -> Iterator[Tuple[float, int]]:
        """All pairs in ascending key order."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def min_key(self) -> Optional[float]:
        for key, _ in self.items():
            return key
        return None

    def max_key(self) -> Optional[float]:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[-1]
        assert isinstance(node, _Leaf)
        # The rightmost leaf can be empty only when the whole tree is empty.
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        size = sum(1 for _ in self.items())
        assert size == self._size, f"size mismatch: chain has {size}, counter {self._size}"
        keys = [k for k, _ in self.items()]
        assert all(a <= b for a, b in zip(keys, keys[1:])), "leaf chain not sorted"
        self._check_node(self._root, lo=None, hi=None, depth=0)

    def _check_node(self, node: object, lo: Optional[float], hi: Optional[float], depth: int) -> int:
        if isinstance(node, _Leaf):
            for key in node.keys:
                assert lo is None or key >= lo, f"leaf key {key} below separator {lo}"
                assert hi is None or key <= hi, f"leaf key {key} above separator {hi}"
            return 1
        assert isinstance(node, _Inner)
        assert len(node.children) == len(node.keys) + 1, "inner fan-out mismatch"
        assert all(a <= b for a, b in zip(node.keys, node.keys[1:])), "inner keys unsorted"
        heights = set()
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            heights.add(self._check_node(child, bounds[i], bounds[i + 1], depth + 1))
        assert len(heights) == 1, "children at different heights"
        return heights.pop() + 1
