"""B+-tree substrate.

QALSH (§3.1) indexes the 1-D projections ``h*(o) = a·o`` of all points, one
B+-tree per hash function, and answers queries by expanding a width-
``w·r/2`` window around the query's projection ("virtual rehashing").  This
package provides the tree: an order-configurable B+-tree with chained
leaves, duplicate-key support, range scans, and bidirectional cursors.
"""

from repro.bptree.tree import BPlusTree, Cursor

__all__ = ["BPlusTree", "Cursor"]
