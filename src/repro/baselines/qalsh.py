"""QALSH: query-aware LSH over B+-trees (the radius-enlarging baseline, §3.1).

Huang et al. (PVLDB'15).  Key ideas reproduced here:

* **query-aware hash** — ``h_i(o) = a_i·o`` with no random offset; the
  bucket of the radius-r round is the interval of width ``w·r`` *centred at
  the query's own projection* ("point-to-bucket" estimation granularity in
  the paper's taxonomy);
* **one B+-tree per hash function** — projections are indexed once, and the
  virtual-rehashing rounds (r = 1, c, c², …) only widen the window each
  cursor scans, never rebuild anything;
* **collision counting** — a point becomes a candidate once it collides
  with the query in at least ``l = ⌈α·m⌉`` of the m trees; candidates are
  verified in the original space.  The query stops when k candidates within
  c·r are known or βn + k points have been verified.

Parameter derivation follows the published recipe: with error probability
δ = 1/e and false-positive fraction β = 100/n, the bucket width
``w = √(8c²ln c/(c²−1))`` minimises m, p1 = 2Φ(w/2)−1, p2 = 2Φ(w/(2c))−1,
and m / α are set so both Chernoff tails close simultaneously.

Two interchangeable index backends are provided:

* ``backend='bptree'`` — the faithful structure: one
  :class:`~repro.bptree.tree.BPlusTree` per hash function, walked with
  bidirectional cursors exactly as the on-disk original would be;
* ``backend='array'`` (default) — sorted numpy arrays with incremental
  window bounds; algorithmically identical (the windows, collision counts
  and candidate sets match the B+-tree backend entry for entry) but
  vectorised.  Tests assert result equality between the two.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np
from scipy import stats

from repro import kernels
from repro.baselines.base import ANNIndex, BatchResult, QueryResult
from repro.bptree.tree import BPlusTree
from repro.core.hashing import GaussianProjection
from repro.datasets.distance import point_to_points_distances
from repro.queries import Knn
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator


def optimal_bucket_width(c: float) -> float:
    """w* = sqrt(8·c²·ln(c) / (c² − 1)): the width minimising m."""
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")
    return math.sqrt(8.0 * c * c * math.log(c) / (c * c - 1.0))


def collision_probabilities(w: float, c: float) -> Tuple[float, float]:
    """(p1, p2) for the query-aware bucket of width w at distances 1 and c."""
    p1 = 2.0 * stats.norm.cdf(w / 2.0) - 1.0
    p2 = 2.0 * stats.norm.cdf(w / (2.0 * c)) - 1.0
    return float(p1), float(p2)


def derive_parameters(n: int, c: float, delta: float, beta: float) -> Tuple[int, float, float]:
    """Solve for (m, alpha, w) per the QALSH recipe.

    m is the number of hash functions (and B+-trees) and alpha the collision
    threshold percentage, chosen so that

    * a true positive (distance ≤ 1 pre-scaling) collides in ≥ α·m trees
      with probability ≥ 1 − δ, and
    * each false positive (distance > c) collides in ≥ α·m trees with
      probability ≤ β,

    via the two-sided Hoeffding bounds: with η = √(ln(2/β) / ln(1/δ)),
    α = (η·p1 + p2) / (1 + η) and
    m = ⌈ (√(ln(2/β)) + √(ln(1/δ)))² / (2 (p1 − p2)²) ⌉.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 < delta < 1.0 or not 0.0 < beta < 1.0:
        raise ValueError(f"delta and beta must be in (0, 1), got {delta}, {beta}")
    w = optimal_bucket_width(c)
    p1, p2 = collision_probabilities(w, c)
    ln_inv_delta = math.log(1.0 / delta)
    ln_two_beta = math.log(2.0 / beta)
    eta = math.sqrt(ln_two_beta / ln_inv_delta)
    alpha = (eta * p1 + p2) / (1.0 + eta)
    m = math.ceil(
        (math.sqrt(ln_two_beta) + math.sqrt(ln_inv_delta)) ** 2
        / (2.0 * (p1 - p2) ** 2)
    )
    return int(m), float(alpha), float(w)


@register_index("qalsh")
class QALSH(ANNIndex):
    """Query-aware LSH with virtual rehashing and collision counting."""

    name = "QALSH"

    def __init__(
        self,
        *,
        c: float = 1.5,
        delta: float = 1.0 / math.e,
        false_positive_base: float = 100.0,
        backend: str = "array",
        bptree_order: int = 64,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if c <= 1.0:
            raise ValueError(f"approximation ratio c must exceed 1, got {c}")
        if backend not in ("array", "bptree"):
            raise ValueError(f"unknown backend {backend!r}; use 'array' or 'bptree'")
        self.c = float(c)
        self.delta = float(delta)
        self.false_positive_base = float(false_positive_base)
        self.backend = backend
        self.bptree_order = bptree_order
        self._rng = as_generator(seed)
        # β, m, α and the collision threshold depend on n, so they are
        # derived in _fit() (and re-derived whenever the dataset grows
        # through add()'s re-fit).
        self.beta: float | None = None
        self.m: int | None = None
        self.alpha: float | None = None
        self.w: float | None = None
        self.collision_threshold: int | None = None
        self.projection: GaussianProjection | None = None
        self.projections: np.ndarray | None = None
        self._trees: List[BPlusTree] = []
        self._sorted_keys: np.ndarray | None = None  # (m, n)
        self._sorted_ids: np.ndarray | None = None  # (m, n)
        self._projection_spread: float = 1.0

    def _fit(self) -> None:
        # β = 100/n in the paper; clamp for tiny test datasets.
        self.beta = min(0.5, self.false_positive_base / self.n)
        self.m, self.alpha, self.w = derive_parameters(self.n, self.c, self.delta, self.beta)
        self.collision_threshold = max(1, math.ceil(self.alpha * self.m))
        self.projection = GaussianProjection(self.d, self.m, seed=self._rng)
        self.projections = self.projection.project(self.data)  # (n, m)
        # Dataset-level projection scale, used to seed the virtual-rehashing
        # radius ladder (the projections are unnormalised, so the paper's
        # r = 1 starting radius has no absolute meaning here).
        center = float(np.median(self.projections))
        self._projection_spread = float(
            np.median(np.abs(self.projections - center))
        ) or 1.0
        if self.backend == "bptree":
            self._trees = [
                BPlusTree.from_items(
                    zip(self.projections[:, i].tolist(), range(self.n)),
                    order=self.bptree_order,
                )
                for i in range(self.m)
            ]
        else:
            order = np.argsort(self.projections, axis=0, kind="stable")  # (n, m)
            self._sorted_ids = order.T.copy()  # (m, n)
            self._sorted_keys = np.take_along_axis(self.projections, order, axis=0).T.copy()

    # ------------------------------------------------------------------
    # query: virtual rehashing + collision counting
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        query_proj = self.projection.project(q)  # (m,)
        collisions = np.zeros(self.n, dtype=np.int32)
        verified: List[Tuple[int, float]] = []
        verified_mask = np.zeros(self.n, dtype=bool)
        budget = int(math.ceil(self.beta * self.n)) + k

        # The projections are unnormalised, so radius-1 is meaningless in
        # absolute terms; seed the ladder from the dataset's projection
        # spread so round 1 covers a thin but non-empty window.
        radius = max(self._projection_spread / 16.0, 1e-12)

        if self.backend == "array":
            lo_idx = np.empty(self.m, dtype=np.int64)
            hi_idx = np.empty(self.m, dtype=np.int64)
            for i in range(self.m):
                # Degenerate initial window: nothing consumed yet.
                start = int(np.searchsorted(self._sorted_keys[i], query_proj[i]))
                lo_idx[i] = start
                hi_idx[i] = start
            state = (lo_idx, hi_idx)
        else:
            state = [
                tree.cursor(float(query_proj[i])) for i, tree in enumerate(self._trees)
            ]

        max_rounds = 64
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            half_window = self.w * radius / 2.0
            if self.backend == "array":
                self._advance_windows(state, query_proj, half_window, collisions)
            else:
                self._advance_cursors(state, query_proj, half_window, collisions)
            self._verify_candidates(q, collisions, verified, verified_mask)
            within = sum(1 for _, dist in verified if dist <= self.c * radius)
            if within >= k or len(verified) >= budget:
                break
            radius *= self.c

        verified.sort(key=lambda pair: (pair[1], pair[0]))
        top = verified[:k]
        return QueryResult(
            ids=np.asarray([pid for pid, _ in top], dtype=np.int64),
            distances=np.asarray([dist for _, dist in top], dtype=np.float64),
            stats={
                "candidates": float(len(verified)),
                "m": float(self.m),
                "rounds": float(rounds),
            },
        )

    # ------------------------------------------------------------------
    # batched kNN (the fast-backend path, array backend only)
    # ------------------------------------------------------------------

    #: Cap on (block queries × n) collision-matrix entries per sweep.
    _BATCH_BLOCK_ENTRIES = 8_000_000

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Round-synchronous batch path over the sorted-array backend.

        Runs the virtual-rehashing ladder for a whole query block at
        once: per round, every still-active query widens its m windows
        (vectorised ``searchsorted`` bounds, incremental collision
        deltas), all fresh threshold-crossers of the round are verified
        by **one** gathered distance kernel, and per-query termination
        mirrors the loop exactly.  Projections stay per-query GEMVs —
        window boundaries compare those exact bits.  Active only under
        the ``fast`` kernel backend; results, distances, and stats are
        byte-identical to the per-query loop.
        """
        if kernels.active().name != "fast" or self.backend != "array":
            return super()._run_knn(queries, spec)
        results: List[QueryResult] = []
        block = max(1, self._BATCH_BLOCK_ENTRIES // max(1, self.n))
        for start in range(0, queries.shape[0], block):
            results.extend(self._knn_block(queries[start : start + block], spec.k))
        return BatchResult.from_queries(results, k=spec.k)

    def _knn_block(self, queries: np.ndarray, k: int) -> List[QueryResult]:
        kernel = kernels.active()
        num_queries = queries.shape[0]
        # Per-query GEMVs: bit-identical to the loop's projection.
        query_proj = np.stack([self.projection.project(q) for q in queries])
        budget = int(math.ceil(self.beta * self.n)) + k
        collisions = np.zeros((num_queries, self.n), dtype=np.int32)
        verified_mask = np.zeros((num_queries, self.n), dtype=bool)
        pool_ids: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        pool_dists: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        verified_count = np.zeros(num_queries, dtype=np.int64)
        rounds = np.zeros(num_queries, dtype=np.int64)
        active = np.ones(num_queries, dtype=bool)
        lo_idx = np.empty((num_queries, self.m), dtype=np.int64)
        hi_idx = np.empty((num_queries, self.m), dtype=np.int64)
        for i in range(self.m):
            pos = np.searchsorted(self._sorted_keys[i], query_proj[:, i])
            lo_idx[:, i] = pos
            hi_idx[:, i] = pos
        radius = max(self._projection_spread / 16.0, 1e-12)
        for _ in range(64):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            rounds[idx] += 1
            half_window = self.w * radius / 2.0
            for i in range(self.m):
                keys = self._sorted_keys[i]
                ids_i = self._sorted_ids[i]
                lo_t = np.searchsorted(keys, query_proj[idx, i] - half_window, side="left")
                hi_t = np.searchsorted(keys, query_proj[idx, i] + half_window, side="right")
                # A window slice of one hash's sorted order holds distinct
                # ids, so a fancy-index add is exact (and far cheaper than
                # np.add.at, which must assume duplicates).
                for pos, a in enumerate(idx):
                    if lo_t[pos] < lo_idx[a, i]:
                        collisions[a, ids_i[lo_t[pos] : lo_idx[a, i]]] += 1
                        lo_idx[a, i] = lo_t[pos]
                    if hi_t[pos] > hi_idx[a, i]:
                        collisions[a, ids_i[hi_idx[a, i] : hi_t[pos]]] += 1
                        hi_idx[a, i] = hi_t[pos]
            # One gathered verification kernel for the whole round.
            fresh_q: List[np.ndarray] = []
            fresh_ids: List[np.ndarray] = []
            for a in idx:
                fresh = np.flatnonzero(
                    (collisions[a] >= self.collision_threshold) & ~verified_mask[a]
                )
                if fresh.size:
                    verified_mask[a, fresh] = True
                    fresh_q.append(np.full(fresh.size, a, dtype=np.int64))
                    fresh_ids.append(fresh)
            if fresh_ids:
                rep_q = np.concatenate(fresh_q)
                ids = np.concatenate(fresh_ids)
                dists = kernel.verify_distances(self.data, ids, queries, rep_q)
                offset = 0
                for chunk_q, chunk_ids in zip(fresh_q, fresh_ids):
                    a = int(chunk_q[0])
                    pool_ids[a].append(chunk_ids)
                    pool_dists[a].append(dists[offset : offset + chunk_ids.size])
                    offset += chunk_ids.size
                    verified_count[a] += chunk_ids.size
            threshold = self.c * radius
            for a in idx:
                within = sum(
                    int((chunk <= threshold).sum()) for chunk in pool_dists[a]
                )
                if within >= k or verified_count[a] >= budget:
                    active[a] = False
            radius *= self.c
        results: List[QueryResult] = []
        for a in range(num_queries):
            if pool_ids[a]:
                all_ids = np.concatenate(pool_ids[a])
                all_dists = np.concatenate(pool_dists[a])
                order = np.lexsort((all_ids, all_dists))[:k]
                top_ids, top_dists = all_ids[order], all_dists[order]
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float64)
            results.append(
                QueryResult(
                    ids=top_ids,
                    distances=top_dists,
                    stats={
                        "candidates": float(verified_count[a]),
                        "m": float(self.m),
                        "rounds": float(rounds[a]),
                    },
                )
            )
        return results

    # ------------------------------------------------------------------
    # backend: incremental window expansion over sorted arrays
    # ------------------------------------------------------------------

    def _advance_windows(
        self,
        state: Tuple[np.ndarray, np.ndarray],
        query_proj: np.ndarray,
        half_window: float,
        collisions: np.ndarray,
    ) -> None:
        """Widen each hash function's window to ±half_window and count the
        newly covered entries — the vectorised twin of the cursor walk."""
        lo_idx, hi_idx = state
        for i in range(self.m):
            keys = self._sorted_keys[i]
            ids = self._sorted_ids[i]
            lo_target = int(np.searchsorted(keys, query_proj[i] - half_window, side="left"))
            hi_target = int(np.searchsorted(keys, query_proj[i] + half_window, side="right"))
            if lo_target < lo_idx[i]:
                collisions[ids[lo_target : lo_idx[i]]] += 1
                lo_idx[i] = lo_target
            if hi_target > hi_idx[i]:
                collisions[ids[hi_idx[i] : hi_target]] += 1
                hi_idx[i] = hi_target

    # ------------------------------------------------------------------
    # backend: B+-tree cursors
    # ------------------------------------------------------------------

    def _advance_cursors(
        self,
        cursors,
        query_proj: np.ndarray,
        half_window: float,
        collisions: np.ndarray,
    ) -> None:
        """Consume every cursor entry inside ±half_window of the query
        projection and bump collision counts."""
        for i, cursor in enumerate(cursors):
            center = float(query_proj[i])
            lo, hi = center - half_window, center + half_window
            while True:
                entry = cursor.peek_right()
                if entry is None or entry[0] > hi:
                    break
                cursor.move_right()
                collisions[entry[1]] += 1
            while True:
                entry = cursor.peek_left()
                if entry is None or entry[0] < lo:
                    break
                cursor.move_left()
                collisions[entry[1]] += 1

    def _verify_candidates(
        self,
        q: np.ndarray,
        collisions: np.ndarray,
        verified: List[Tuple[int, float]],
        verified_mask: np.ndarray,
    ) -> None:
        """Verify (in the original space) every new point whose collision
        count reached the threshold."""
        fresh = np.flatnonzero((collisions >= self.collision_threshold) & ~verified_mask)
        if fresh.size == 0:
            return
        verified_mask[fresh] = True
        dists = point_to_points_distances(q, self.data[fresh])
        verified.extend((int(pid), float(dist)) for pid, dist in zip(fresh, dists))
