"""R-LSH: PM-LSH's radius-enlarging algorithm on an R-tree (§6.1 ablation).

Identical to :class:`~repro.core.pmlsh.PMLSH` in every respect — same
projections, same Eq. 10 parameters, same r_min selection, same candidate
budget — except the projected points are indexed by an R-tree instead of a
PM-tree.  The paper introduces this variant purely to isolate the PM-tree's
contribution; Table 4 and Figs. 7–11 show PM-LSH beating it on every metric,
consistent with the Table 2 cost-model gap.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Set, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.core.estimation import solve_parameters
from repro.core.hashing import GaussianProjection
from repro.core.params import PMLSHParams
from repro.core.radius import select_initial_radius
from repro.datasets.distance import point_to_points_distances, sample_distance_distribution
from repro.registry import register_index
from repro.rtree.tree import RTree
from repro.utils.rng import RandomState, as_generator


@register_index("r-lsh")
class RLSH(ANNIndex):
    """PM-LSH with the PM-tree swapped for an R-tree."""

    name = "R-LSH"

    def __init__(
        self,
        *,
        params: PMLSHParams | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        self.params = params or PMLSHParams()
        self._rng = as_generator(seed)
        self.solved = solve_parameters(
            m=self.params.m,
            c=self.params.c,
            alpha1=self.params.alpha1,
            beta_multiplier=self.params.beta_multiplier,
        )
        if self.params.beta_override is not None:
            self.solved = replace(self.solved, beta=self.params.beta_override)
        self.projection: GaussianProjection | None = None
        self.projected: np.ndarray | None = None
        self.tree: RTree | None = None
        self.distance_distribution = None

    def _fit(self) -> None:
        params = self.params
        self.projection = GaussianProjection(self.d, params.m, seed=self._rng)
        self.projected = self.projection.project(self.data)
        self.tree = RTree.build(self.projected, capacity=params.node_capacity, method="str")
        self.distance_distribution = sample_distance_distribution(
            self.data,
            num_pairs=min(params.radius_sample_pairs, max(1000, 10 * self.n)),
            seed=self._rng,
        )

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        params = self.params
        query_proj = self.projection.project(q)
        budget = int(np.ceil(self.solved.beta * self.n)) + k
        r = select_initial_radius(
            self.distance_distribution,
            n=self.n,
            beta=self.solved.beta,
            k=k,
            shrink=params.radius_shrink,
        )
        seen: Set[int] = set()
        collected: List[Tuple[int, float]] = []
        rounds = 0
        for _ in range(params.max_iterations):
            rounds += 1
            if sum(1 for _, dist in collected if dist <= params.c * r) >= k:
                break
            matches = self.tree.range_query(query_proj, self.solved.t * r, limit=budget)
            fresh = [pid for pid, _ in matches if pid not in seen]
            if fresh:
                ids = np.asarray(fresh, dtype=np.int64)
                true_dists = point_to_points_distances(q, self.data[ids])
                for pid, dist in zip(ids, true_dists):
                    seen.add(int(pid))
                    collected.append((int(pid), float(dist)))
            if len(seen) >= budget:
                break
            r *= params.c
        collected.sort(key=lambda pair: pair[1])
        top = collected[:k]
        return QueryResult(
            ids=np.asarray([pid for pid, _ in top], dtype=np.int64),
            distances=np.asarray([dist for _, dist in top], dtype=np.float64),
            stats={"candidates": float(len(seen)), "rounds": float(rounds)},
        )
