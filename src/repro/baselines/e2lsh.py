"""Basic LSH (E2LSH-style) with compound hash tables (§2.2).

L hash tables, each keyed by a compound hash G(o) = (h_1(o), …, h_m(o)) of
bucketed p-stable hashes.  The (r, c)-BC query probes the query's bucket in
every table, examines up to 3L points, and reports a point within c·r if one
exists.  A c-ANN query runs the ball-cover ladder r = 1, c, c², … — the
classic reduction of §2.2 ("From (r, c)-BC to c-ANN").

Kept primarily as the reference implementation of the scheme the rest of
the paper improves on; it also powers tests of the (r, c)-BC semantics.

Under the ``fast`` kernel backend (``REPRO_KERNELS=fast``) the kNN batch
path pools every query's bucket candidates and runs a single gathered
verification + top-k kernel over the pool — candidate sets, distances
and results are byte-identical to the per-query loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro import kernels
from repro.baselines.base import ANNIndex, BatchResult, QueryResult, aggregate_stats
from repro.core.hashing import LSHFunction
from repro.datasets.distance import point_to_points_distances
from repro.queries import Knn
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator, spawn_generators


@register_index("e2lsh", "basic-lsh")
class E2LSH(ANNIndex):
    """The basic LSH scheme: L tables × m concatenated bucketed hashes."""

    name = "E2LSH"

    def __init__(
        self,
        *,
        num_tables: int = 8,
        m: int = 8,
        w: float = 4.0,
        probe_cap_per_table: int = 3,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_tables <= 0:
            raise ValueError(f"num_tables must be positive, got {num_tables}")
        if probe_cap_per_table <= 0:
            raise ValueError(f"probe_cap_per_table must be positive, got {probe_cap_per_table}")
        self.num_tables = num_tables
        self.m = m
        self.w = float(w)
        #: E2LSH examines at most 3L points for a BC query; this is the 3.
        self.probe_cap_per_table = probe_cap_per_table
        self._rng = as_generator(seed)
        self._functions: List[LSHFunction] = []
        self._tables: List[Dict[tuple, List[int]]] = []
        self._overfetch_cache: Tuple[int, int] | None = None

    def _fit(self) -> None:
        self._functions = [
            LSHFunction(self.d, self.m, w=self.w, seed=child)
            for child in spawn_generators(self._rng, self.num_tables)
        ]
        self._tables = []
        for function in self._functions:
            buckets = function.bucketize(self.data)
            table: Dict[tuple, List[int]] = {}
            for point_id, row in enumerate(buckets):
                table.setdefault(tuple(int(b) for b in row), []).append(point_id)
            self._tables.append(table)

    # ------------------------------------------------------------------
    # (r, c)-BC query
    # ------------------------------------------------------------------

    def ball_cover_query(self, q: np.ndarray, r: float, c: float) -> Tuple[int, float] | None:
        """Probe G(q) in every table; return a point within c·r, or None.

        Examines at most ``probe_cap_per_table × L`` points, as in §2.2.
        """
        self._require_built()
        q = self._validate_query(q, k=1)
        if r <= 0 or c <= 1.0:
            raise ValueError(f"need r > 0 and c > 1, got r={r}, c={c}")
        best: Tuple[int, float] | None = None
        for function, table in zip(self._functions, self._tables):
            bucket = table.get(function.compound_key(q), [])
            probe = bucket[: self.probe_cap_per_table]
            if not probe:
                continue
            ids = np.asarray(probe, dtype=np.int64)
            dists = point_to_points_distances(q, self.data[ids])
            hit = int(np.argmin(dists))
            if dists[hit] <= c * r and (best is None or dists[hit] < best[1]):
                best = (int(ids[hit]), float(dists[hit]))
        return best

    # ------------------------------------------------------------------
    # c-ANN via the ball-cover ladder
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int, c: float = 2.0) -> QueryResult:
        """(c, k)-ANN by collecting bucket candidates across all tables.

        For k > 1 the pure ladder is wasteful, so the practical variant used
        here gathers every point sharing a bucket with q in any table,
        verifies true distances, and falls back to the ladder radius only to
        bound the probe count.
        """
        self._require_built()
        q = self._validate_query(q, k)
        candidate_ids: List[int] = []
        seen = set()
        for function, table in zip(self._functions, self._tables):
            for point_id in table.get(function.compound_key(q), []):
                if point_id not in seen:
                    seen.add(point_id)
                    candidate_ids.append(point_id)
        if not candidate_ids:
            candidate_ids = self._fallback_candidates(k)
        ids = np.asarray(candidate_ids, dtype=np.int64)
        dists = point_to_points_distances(q, self.data[ids])
        order = np.lexsort((ids, dists))[:k]
        return QueryResult(
            ids=ids[order],
            distances=dists[order],
            stats={"candidates": float(ids.size)},
        )

    # ------------------------------------------------------------------
    # batched kNN (the fast-backend path)
    # ------------------------------------------------------------------

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Bucketed-hash-table batch path (``fast`` kernels only).

        Hashing stays per-query (a GEMV reduces in a different order than
        a batched GEMM, and the compound key floors those floats — bucket
        boundaries must see the exact bits the loop path sees); the batch
        win is everything after the table probes: every (query, candidate)
        pair is verified by one gathered kernel call and one ``group_topk``
        kernel applies the canonical ``(distance, id)`` cut — results,
        distances and stats are byte-identical to the per-query loop the
        numpy backend runs.
        """
        kernel = kernels.active()
        if kernel.name != "fast":
            return super()._run_knn(queries, spec)
        k = spec.k
        num_queries = queries.shape[0]
        counts = np.empty(num_queries, dtype=np.int64)
        id_blocks: List[np.ndarray] = []
        for qi in range(num_queries):
            seen: set = set()
            candidate_ids: List[int] = []
            for function, table in zip(self._functions, self._tables):
                for point_id in table.get(function.compound_key(queries[qi]), []):
                    if point_id not in seen:
                        seen.add(point_id)
                        candidate_ids.append(point_id)
            if not candidate_ids:
                # rng draws happen in query order — the same order the
                # per-query loop consumes the shared generator in.
                candidate_ids = self._fallback_candidates(k)
            counts[qi] = len(candidate_ids)
            id_blocks.append(np.asarray(candidate_ids, dtype=np.int64))
        ids = np.concatenate(id_blocks) if id_blocks else np.empty(0, dtype=np.int64)
        rep_q = np.repeat(np.arange(num_queries, dtype=np.int64), counts)
        dists = kernel.verify_distances(self.data, ids, queries, rep_q)
        lims, top_ids, top_dists = kernel.group_topk(
            rep_q, ids, dists, num_queries, k
        )
        out_ids = np.full((num_queries, k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, k), np.inf, dtype=np.float64)
        per_query = []
        for qi in range(num_queries):
            lo, hi = int(lims[qi]), int(lims[qi + 1])
            out_ids[qi, : hi - lo] = top_ids[lo:hi]
            out_dists[qi, : hi - lo] = top_dists[lo:hi]
            per_query.append({"candidates": float(counts[qi])})
        return BatchResult(
            ids=out_ids,
            distances=out_dists,
            stats=aggregate_stats(tuple(per_query)),
            per_query_stats=tuple(per_query),
        )

    def _fallback_candidates(self, k: int) -> List[int]:
        """Degenerate miss (no colliding bucket at all): a random probe so
        the contract (k results when nlive ≥ k) holds.  Drawn from the
        *live* ids under tombstones, so the overfetch bound stays
        bucket-structural; without tombstones the draw is bit-identical
        to sampling ``range(n)``."""
        rng = as_generator(self._rng)
        if self._tombstones:
            live = self.live_ids()
            return list(rng.choice(live, size=min(live.size, 4 * k), replace=False))
        return list(rng.choice(self.n, size=min(self.n, 4 * k), replace=False))

    def _tombstone_overfetch(self, k: int) -> int:
        """Dead ids reachable by any single query: at most the worst
        bucket's dead count, summed over tables (one probed bucket per
        table; the random fallback is live-only).  Cached per write-epoch
        — the bucketize GEMM over the dead rows runs once per delete
        batch, not once per query."""
        if self._overfetch_cache is not None and self._overfetch_cache[0] == self.epoch:
            return self._overfetch_cache[1]
        dead = self._tombstones.ids()
        bound = 0
        for function in self._functions:
            buckets = np.atleast_2d(function.bucketize(self.data[dead]))
            _, counts = np.unique(buckets, axis=0, return_counts=True)
            bound += int(counts.max()) if counts.size else 0
        self._overfetch_cache = (self.epoch, bound)
        return bound
