"""Basic LSH (E2LSH-style) with compound hash tables (§2.2).

L hash tables, each keyed by a compound hash G(o) = (h_1(o), …, h_m(o)) of
bucketed p-stable hashes.  The (r, c)-BC query probes the query's bucket in
every table, examines up to 3L points, and reports a point within c·r if one
exists.  A c-ANN query runs the ball-cover ladder r = 1, c, c², … — the
classic reduction of §2.2 ("From (r, c)-BC to c-ANN").

Kept primarily as the reference implementation of the scheme the rest of
the paper improves on; it also powers tests of the (r, c)-BC semantics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.core.hashing import LSHFunction
from repro.datasets.distance import point_to_points_distances
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator, spawn_generators


@register_index("e2lsh", "basic-lsh")
class E2LSH(ANNIndex):
    """The basic LSH scheme: L tables × m concatenated bucketed hashes."""

    name = "E2LSH"

    def __init__(
        self,
        *,
        num_tables: int = 8,
        m: int = 8,
        w: float = 4.0,
        probe_cap_per_table: int = 3,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_tables <= 0:
            raise ValueError(f"num_tables must be positive, got {num_tables}")
        if probe_cap_per_table <= 0:
            raise ValueError(f"probe_cap_per_table must be positive, got {probe_cap_per_table}")
        self.num_tables = num_tables
        self.m = m
        self.w = float(w)
        #: E2LSH examines at most 3L points for a BC query; this is the 3.
        self.probe_cap_per_table = probe_cap_per_table
        self._rng = as_generator(seed)
        self._functions: List[LSHFunction] = []
        self._tables: List[Dict[tuple, List[int]]] = []

    def _fit(self) -> None:
        self._functions = [
            LSHFunction(self.d, self.m, w=self.w, seed=child)
            for child in spawn_generators(self._rng, self.num_tables)
        ]
        self._tables = []
        for function in self._functions:
            buckets = function.bucketize(self.data)
            table: Dict[tuple, List[int]] = {}
            for point_id, row in enumerate(buckets):
                table.setdefault(tuple(int(b) for b in row), []).append(point_id)
            self._tables.append(table)

    # ------------------------------------------------------------------
    # (r, c)-BC query
    # ------------------------------------------------------------------

    def ball_cover_query(self, q: np.ndarray, r: float, c: float) -> Tuple[int, float] | None:
        """Probe G(q) in every table; return a point within c·r, or None.

        Examines at most ``probe_cap_per_table × L`` points, as in §2.2.
        """
        self._require_built()
        q = self._validate_query(q, k=1)
        if r <= 0 or c <= 1.0:
            raise ValueError(f"need r > 0 and c > 1, got r={r}, c={c}")
        best: Tuple[int, float] | None = None
        for function, table in zip(self._functions, self._tables):
            bucket = table.get(function.compound_key(q), [])
            probe = bucket[: self.probe_cap_per_table]
            if not probe:
                continue
            ids = np.asarray(probe, dtype=np.int64)
            dists = point_to_points_distances(q, self.data[ids])
            hit = int(np.argmin(dists))
            if dists[hit] <= c * r and (best is None or dists[hit] < best[1]):
                best = (int(ids[hit]), float(dists[hit]))
        return best

    # ------------------------------------------------------------------
    # c-ANN via the ball-cover ladder
    # ------------------------------------------------------------------

    def query(self, q: np.ndarray, k: int, c: float = 2.0) -> QueryResult:
        """(c, k)-ANN by collecting bucket candidates across all tables.

        For k > 1 the pure ladder is wasteful, so the practical variant used
        here gathers every point sharing a bucket with q in any table,
        verifies true distances, and falls back to the ladder radius only to
        bound the probe count.
        """
        self._require_built()
        q = self._validate_query(q, k)
        candidate_ids: List[int] = []
        seen = set()
        for function, table in zip(self._functions, self._tables):
            for point_id in table.get(function.compound_key(q), []):
                if point_id not in seen:
                    seen.add(point_id)
                    candidate_ids.append(point_id)
        if not candidate_ids:
            # Degenerate miss: no colliding bucket at all; fall back to a
            # random probe so the contract (k results when n ≥ k) holds.
            candidate_ids = list(
                as_generator(self._rng).choice(self.n, size=min(self.n, 4 * k), replace=False)
            )
        ids = np.asarray(candidate_ids, dtype=np.int64)
        dists = point_to_points_distances(q, self.data[ids])
        order = np.argsort(dists, kind="stable")[:k]
        return QueryResult(
            ids=ids[order],
            distances=dists[order],
            stats={"candidates": float(ids.size)},
        )
