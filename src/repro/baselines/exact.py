"""Brute-force exact kNN — the ground-truth oracle for recall and ratio."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.datasets.distance import chunked_knn


class ExactKNN(ANNIndex):
    """Exact k nearest neighbours by blocked brute force.

    Not a competitor in the paper's tables; the harness uses it to compute
    the exact kNN sets that recall (Eq. 12) and overall ratio (Eq. 11)
    are defined against.
    """

    name = "Exact"

    def build(self) -> "ExactKNN":
        self._built = True
        return self

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        ids, dists = chunked_knn(q[None, :], self.data, k)
        return QueryResult(ids=ids[0], distances=dists[0], stats={"candidates": float(self.n)})

    def query_batch(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised multi-query path used for ground-truth caching."""
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.d:
            raise ValueError(f"queries must have dimension {self.d}, got {queries.shape[1]}")
        return chunked_knn(queries, self.data, k)
