"""Brute-force exact kNN — the ground-truth oracle for recall and ratio."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult, QueryResult, aggregate_stats
from repro.datasets.distance import chunked_knn
from repro.queries import Knn
from repro.registry import register_index


@register_index("exact", "brute-force")
class ExactKNN(ANNIndex):
    """Exact k nearest neighbours by blocked brute force.

    Not a competitor in the paper's tables; the harness uses it to compute
    the exact kNN sets that recall (Eq. 12) and overall ratio (Eq. 11)
    are defined against.  Its inherited range / closest-pair fallbacks are
    likewise exact, so it doubles as the ground-truth reference for every
    query type.
    """

    name = "Exact"

    #: Scans live rows only, so tombstones never reach the result window.
    _knn_filters_tombstones = True

    def _fit(self) -> None:
        pass  # brute force needs no structures beyond the data itself

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        if self._tombstones:
            live = self.live_ids()
            ids, dists = chunked_knn(q[None, :], self.data[live], min(k, live.size))
            return QueryResult(
                ids=live[ids[0]],
                distances=dists[0],
                stats={"candidates": float(live.size)},
            )
        ids, dists = chunked_knn(q[None, :], self.data, k)
        return QueryResult(ids=ids[0], distances=dists[0], stats={"candidates": float(self.n)})

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Vectorised multi-query path (blocked brute force over the batch).

        With tombstones, the scan runs over the gathered live submatrix and
        dense neighbour ids map back through the (monotonic, sorted) live-id
        array — distances and tie order are byte-identical to an index that
        was fitted on the live rows alone.
        """
        if self._tombstones:
            live = self.live_ids()
            ids, dists = chunked_knn(queries, self.data[live], spec.k)
            ids = live[ids]
            candidates = float(live.size)
        else:
            ids, dists = chunked_knn(queries, self.data, spec.k)
            candidates = float(self.n)
        per_query = tuple({"candidates": candidates} for _ in range(ids.shape[0]))
        return BatchResult(
            ids=ids,
            distances=dists,
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist to ``.npz``: the dataset, the registry name (so
        :func:`repro.load_index` can dispatch back to this class), and the
        lifecycle state (epoch, tombstones, fit-time cardinality)."""
        self._require_built()
        from repro.persistence import lifecycle_arrays

        np.savez_compressed(
            path,
            data=self.data,
            registry_name=np.asarray(self.registry_name),
            **lifecycle_arrays(self),
        )

    @classmethod
    def load(cls, path: str) -> "ExactKNN":
        """Restore an index persisted with :meth:`save`, deletes included."""
        from repro.persistence import apply_lifecycle_state, read_lifecycle_state

        with np.load(path) as archive:
            data = archive["data"]
            state = read_lifecycle_state(archive)
        index = cls().fit(data)
        apply_lifecycle_state(index, state)
        return index

    # ------------------------------------------------------------------
    # shared-memory snapshots
    # ------------------------------------------------------------------

    def to_shm(self):
        """Export ``(arrays, state)`` for shared-memory serving replicas —
        brute force needs only the dataset and the lifecycle state."""
        self._require_built()
        arrays = {"data": self.data, "tombstone_ids": self._tombstones.ids()}
        state = {"epoch": self.epoch, "fitted_n": self.fitted_n}
        return arrays, state

    @classmethod
    def from_shm(cls, arrays, state) -> "ExactKNN":
        """Rebuild a replica over (read-only) :meth:`to_shm` views; the
        dataset stays a zero-copy view into the shared segment."""
        from repro.persistence import apply_lifecycle_state

        index = cls()
        index._set_data(arrays["data"])
        index._built = True
        index._fitted_n = index.ntotal
        apply_lifecycle_state(
            index,
            {
                "epoch": int(state["epoch"]),
                "fitted_n": int(state["fitted_n"]),
                "tombstone_ids": np.asarray(arrays["tombstone_ids"], dtype=np.int64),
            },
        )
        return index
