"""Brute-force exact kNN — the ground-truth oracle for recall and ratio."""

from __future__ import annotations

import warnings

import numpy as np

from repro.baselines.base import ANNIndex, BatchResult, QueryResult, aggregate_stats
from repro.datasets.distance import chunked_knn
from repro.registry import register_index


@register_index("exact", "brute-force")
class ExactKNN(ANNIndex):
    """Exact k nearest neighbours by blocked brute force.

    Not a competitor in the paper's tables; the harness uses it to compute
    the exact kNN sets that recall (Eq. 12) and overall ratio (Eq. 11)
    are defined against.
    """

    name = "Exact"

    def _fit(self) -> None:
        pass  # brute force needs no structures beyond the data itself

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        ids, dists = chunked_knn(q[None, :], self.data, k)
        return QueryResult(ids=ids[0], distances=dists[0], stats={"candidates": float(self.n)})

    def _search(self, queries: np.ndarray, k: int) -> BatchResult:
        """Vectorised multi-query path (blocked brute force over the batch)."""
        ids, dists = chunked_knn(queries, self.data, k)
        per_query = tuple({"candidates": float(self.n)} for _ in range(ids.shape[0]))
        return BatchResult(
            ids=ids,
            distances=dists,
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )

    def query_batch(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated: raw ``(ids, distances)`` form of :meth:`search`."""
        warnings.warn(
            "legacy ANNIndex API: query_batch() is deprecated; use search()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.d:
            raise ValueError(f"queries must have dimension {self.d}, got {queries.shape[1]}")
        return chunked_knn(queries, self.data, k)
