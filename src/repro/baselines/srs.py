"""SRS: the metric-indexing baseline (Sun et al., PVLDB'14; §3.1).

SRS projects the dataset into R^m with m Gaussian projections and indexes
the projected points in an R-tree.  A (c, k)-ANN query walks the R-tree's
*incremental* nearest-neighbour sequence (``incSearch``): each step yields
the next-closest projected point, whose true distance is verified in the
original space.  The walk stops when either

* a fraction ``max_fraction`` (the paper's T) of the dataset has been
  verified, or
* the early-termination test passes: by Lemma 1, an unseen point at
  original distance ≤ (current best)/c would show a projected distance
  beyond the incremental frontier with probability
  ``Pr[χ²(m) ≥ (c·r'_next / best)²]``; once that is confident enough
  (≥ p'_τ) the current best is declared a c-approximate answer.

The weakness PM-LSH targets (§1): each incSearch step costs O(log n) heap
work, and the *next* projected NN is not necessarily the next-best true
candidate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import stats

from repro.baselines.base import ANNIndex, QueryResult
from repro.core.hashing import GaussianProjection
from repro.registry import register_index
from repro.rtree.tree import RTree
from repro.utils.heap import BoundedMaxHeap
from repro.utils.rng import RandomState, as_generator


@register_index("srs")
class SRS(ANNIndex):
    """SRS with an R-tree over the m-dimensional projected space.

    Parameters
    ----------
    m:
        Projection count (the paper's experiments use m = 15 for SRS).
    c:
        Approximation ratio used by the early-termination test.
    early_stop_threshold:
        The paper's p'_τ (default 0.8107 at c = 1.5).
    max_fraction:
        The paper's T: maximum fraction of points verified (default 0.4010
        at c = 1.5).
    """

    name = "SRS"

    def __init__(
        self,
        *,
        m: int = 15,
        c: float = 1.5,
        early_stop_threshold: float = 0.8107,
        max_fraction: float = 0.4010,
        rtree_capacity: int = 32,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if c <= 1.0:
            raise ValueError(f"approximation ratio c must exceed 1, got {c}")
        if not 0.0 < early_stop_threshold < 1.0:
            raise ValueError(
                f"early_stop_threshold must be in (0, 1), got {early_stop_threshold}"
            )
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError(f"max_fraction must be in (0, 1], got {max_fraction}")
        self.m = m
        self.c = float(c)
        self.early_stop_threshold = float(early_stop_threshold)
        self.max_fraction = float(max_fraction)
        self.rtree_capacity = rtree_capacity
        self._rng = as_generator(seed)
        self.projection: GaussianProjection | None = None
        self.projected: np.ndarray | None = None
        self.tree: RTree | None = None

    def _fit(self) -> None:
        self.projection = GaussianProjection(self.d, self.m, seed=self._rng)
        self.projected = self.projection.project(self.data)
        self.tree = RTree.build(self.projected, capacity=self.rtree_capacity, method="str")

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        query_proj = self.projection.project(q)
        budget = max(k, int(np.ceil(self.max_fraction * self.n)))
        best = BoundedMaxHeap(k)
        verified = 0
        for point_id, projected_dist in self.tree.nearest_iter(query_proj):
            true_dist = float(np.linalg.norm(self.data[point_id] - q))
            best.push(true_dist, point_id)
            verified += 1
            if verified >= budget:
                break
            if len(best) == k and self._early_stop(projected_dist, best.bound):
                break
        pairs: List[Tuple[int, float]] = [
            (point_id, dist) for dist, point_id in best.items_sorted()
        ]
        return QueryResult(
            ids=np.asarray([pid for pid, _ in pairs], dtype=np.int64),
            distances=np.asarray([dist for _, dist in pairs], dtype=np.float64),
            stats={"candidates": float(verified)},
        )

    def _early_stop(self, next_projected_distance: float, best_true_distance: float) -> bool:
        """SRS's stopping test on the incremental frontier.

        Any unseen point o has projected distance r' ≥ r'_next.  If o were a
        c-improvement over the current best (‖q,o‖ < best/c), Lemma 1 puts
        probability ``Pr[χ²(m) ≥ (c·r'_next/best)²]`` on its projection
        reaching the frontier; when that drops below 1 − p'_τ, no
        improvement is likely to remain.
        """
        if best_true_distance <= 0.0:
            return True
        statistic = (self.c * next_projected_distance / best_true_distance) ** 2
        prob_remaining = float(stats.chi2.sf(statistic, df=self.m))
        return prob_remaining <= 1.0 - self.early_stop_threshold
