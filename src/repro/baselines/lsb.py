"""LSB-Forest: Z-order-encoded LSH over B-trees (Tao et al., SIGMOD'09).

One of the radius-enlarging methods of §3.1.  Each tree in the forest
draws m bucketed p-stable hashes, views the m bucket ids of a point as an
integer grid coordinate, assigns the coordinate a Z-order (Morton) value,
and stores ``(z-value, point id)`` in a B-tree.  A query walks a
bidirectional cursor outward from its own z-value: points nearby in
Z-order share long bucket-id prefixes, so they are likely hash collisions
at coarse radii — the Z-order walk *is* the virtual rehashing.

Per the paper's taxonomy (§3.2) the LSB-tree estimates distances at
bucket-to-bucket granularity, which caps its accuracy; the forest of L
trees compensates by union-ing candidates over independent hash draws.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.bptree.tree import BPlusTree
from repro.core.hashing import LSHFunction
from repro.datasets.distance import point_to_points_distances
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.zorder import interleave_bits, zorder_values


@register_index("lsb-forest", "lsb")
class LSBForest(ANNIndex):
    """A forest of LSB-trees.

    Parameters
    ----------
    num_trees:
        Forest size L (the paper sets L from the dataset's page geometry;
        here a small constant suffices).
    m:
        Bucketed hashes per tree (the Z-order dimensionality).
    w:
        Bucket width; ``None`` calibrates to the projection spread.
    budget_fraction:
        Candidates verified per query, as a fraction of n (split across
        the trees' cursor walks).
    """

    name = "LSB-Forest"

    def __init__(
        self,
        *,
        num_trees: int = 4,
        m: int = 8,
        w: float | None = None,
        budget_fraction: float = 0.12,
        bptree_order: int = 64,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_trees <= 0:
            raise ValueError(f"num_trees must be positive, got {num_trees}")
        if w is not None and w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        self.num_trees = num_trees
        self.m = m
        self.w = None if w is None else float(w)
        self._w_explicit = w is not None
        self.budget_fraction = float(budget_fraction)
        self.bptree_order = bptree_order
        self._rng = as_generator(seed)
        self._functions: List[LSHFunction] = []
        self._trees: List[BPlusTree] = []
        self._grid_mins: List[np.ndarray] = []
        self._bits: List[int] = []

    def _calibrated_width(self) -> float:
        sample_size = min(self.n, 1024)
        sample = self.data[self._rng.choice(self.n, size=sample_size, replace=False)]
        directions = self._rng.normal(size=(8, self.d))
        spreads = (sample @ directions.T).std(axis=0)
        return max(2.0 * float(np.median(spreads)), 1e-12)

    def _fit(self) -> None:
        # Recalibrate on every fit unless the caller pinned w: a re-fit may
        # bind a dataset at a different scale than the one w was tuned to.
        if not self._w_explicit:
            self.w = self._calibrated_width()
        self._functions = [
            LSHFunction(self.d, self.m, w=self.w, seed=child)
            for child in spawn_generators(self._rng, self.num_trees)
        ]
        self._trees = []
        self._grid_mins = []
        self._bits = []
        for function in self._functions:
            grid = function.bucketize(self.data)  # (n, m) ints
            grid_min = grid.min(axis=0)
            shifted = grid - grid_min
            bits = max(1, int(shifted.max()).bit_length() + 1)  # +1 headroom for queries
            z_values = zorder_values(shifted, bits=bits)
            self._trees.append(
                BPlusTree.from_items(zip(z_values, range(self.n)), order=self.bptree_order)
            )
            self._grid_mins.append(grid_min)
            self._bits.append(bits)

    def _query_zvalue(self, tree_index: int, q: np.ndarray) -> int:
        # Shift by the same per-dimension minimum used at build time (NOT
        # zorder_values, which would re-shift a single row to the origin).
        grid = np.atleast_1d(self._functions[tree_index].bucketize(q))
        shifted = np.clip(grid - self._grid_mins[tree_index], 0, None)
        limit = (1 << self._bits[tree_index]) - 1
        shifted = np.minimum(shifted, limit)
        return interleave_bits([int(v) for v in shifted], bits=self._bits[tree_index])

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        budget = max(k, int(math.ceil(self.budget_fraction * self.n)))
        per_tree = max(k, budget // self.num_trees)
        seen: set = set()
        candidates: List[int] = []
        for tree_index, tree in enumerate(self._trees):
            z_query = self._query_zvalue(tree_index, q)
            cursor = tree.cursor(z_query)
            taken = 0
            # Alternate the cursor outward: the entries nearest in Z-order
            # are the likeliest hash collisions at the coarsest radii.
            while taken < per_tree:
                left = cursor.peek_left()
                right = cursor.peek_right()
                if left is None and right is None:
                    break
                if right is None or (
                    left is not None and (z_query - left[0]) <= (right[0] - z_query)
                ):
                    entry = cursor.move_left()
                else:
                    entry = cursor.move_right()
                taken += 1
                point_id = entry[1]
                if point_id not in seen:
                    seen.add(point_id)
                    candidates.append(point_id)
        if not candidates:
            candidates = list(
                self._rng.choice(self.n, size=min(self.n, 4 * k), replace=False)
            )
        ids = np.asarray(candidates, dtype=np.int64)
        dists = point_to_points_distances(q, self.data[ids])
        k_eff = min(k, ids.size)
        part = np.argpartition(dists, k_eff - 1)[:k_eff]
        order = np.argsort(dists[part], kind="stable")
        chosen = part[order]
        return QueryResult(
            ids=ids[chosen],
            distances=dists[chosen],
            stats={"candidates": float(ids.size)},
        )
