"""LSB-Forest: Z-order-encoded LSH over B-trees (Tao et al., SIGMOD'09).

One of the radius-enlarging methods of §3.1.  Each tree in the forest
draws m bucketed p-stable hashes, views the m bucket ids of a point as an
integer grid coordinate, assigns the coordinate a Z-order (Morton) value,
and stores ``(z-value, point id)`` in a B-tree.  A query walks a
bidirectional cursor outward from its own z-value: points nearby in
Z-order share long bucket-id prefixes, so they are likely hash collisions
at coarse radii — the Z-order walk *is* the virtual rehashing.

Per the paper's taxonomy (§3.2) the LSB-tree estimates distances at
bucket-to-bucket granularity, which caps its accuracy; the forest of L
trees compensates by union-ing candidates over independent hash draws.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro import kernels
from repro.baselines.base import ANNIndex, BatchResult, QueryResult, aggregate_stats
from repro.bptree.tree import BPlusTree
from repro.core.hashing import LSHFunction
from repro.datasets.distance import point_to_points_distances
from repro.queries import Knn
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.zorder import interleave_bits, zorder_values


@register_index("lsb-forest", "lsb")
class LSBForest(ANNIndex):
    """A forest of LSB-trees.

    Parameters
    ----------
    num_trees:
        Forest size L (the paper sets L from the dataset's page geometry;
        here a small constant suffices).
    m:
        Bucketed hashes per tree (the Z-order dimensionality).
    w:
        Bucket width; ``None`` calibrates to the projection spread.
    budget_fraction:
        Candidates verified per query, as a fraction of n (split across
        the trees' cursor walks).
    """

    name = "LSB-Forest"

    def __init__(
        self,
        *,
        num_trees: int = 4,
        m: int = 8,
        w: float | None = None,
        budget_fraction: float = 0.12,
        bptree_order: int = 64,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_trees <= 0:
            raise ValueError(f"num_trees must be positive, got {num_trees}")
        if w is not None and w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        self.num_trees = num_trees
        self.m = m
        self.w = None if w is None else float(w)
        self._w_explicit = w is not None
        self.budget_fraction = float(budget_fraction)
        self.bptree_order = bptree_order
        self._rng = as_generator(seed)
        self._functions: List[LSHFunction] = []
        self._trees: List[BPlusTree] = []
        self._grid_mins: List[np.ndarray] = []
        self._bits: List[int] = []
        # Sorted (z-value, id) mirrors of the trees for the batch path:
        # object dtype because Morton values are arbitrary-precision ints.
        self._sorted_z: List[np.ndarray] = []
        self._sorted_z_ids: List[np.ndarray] = []

    def _calibrated_width(self) -> float:
        sample_size = min(self.n, 1024)
        sample = self.data[self._rng.choice(self.n, size=sample_size, replace=False)]
        directions = self._rng.normal(size=(8, self.d))
        spreads = (sample @ directions.T).std(axis=0)
        return max(2.0 * float(np.median(spreads)), 1e-12)

    def _fit(self) -> None:
        # Recalibrate on every fit unless the caller pinned w: a re-fit may
        # bind a dataset at a different scale than the one w was tuned to.
        if not self._w_explicit:
            self.w = self._calibrated_width()
        self._functions = [
            LSHFunction(self.d, self.m, w=self.w, seed=child)
            for child in spawn_generators(self._rng, self.num_trees)
        ]
        self._trees = []
        self._grid_mins = []
        self._bits = []
        self._sorted_z = []
        self._sorted_z_ids = []
        for function in self._functions:
            grid = function.bucketize(self.data)  # (n, m) ints
            grid_min = grid.min(axis=0)
            shifted = grid - grid_min
            bits = max(1, int(shifted.max()).bit_length() + 1)  # +1 headroom for queries
            z_values = zorder_values(shifted, bits=bits)
            self._trees.append(
                BPlusTree.from_items(zip(z_values, range(self.n)), order=self.bptree_order)
            )
            self._grid_mins.append(grid_min)
            self._bits.append(bits)
            # Stable sort: equal z-values keep id order, which is exactly
            # the duplicate-key order ``from_items``'s stable sort gives
            # the B-tree — the cursor walk and the array walk see the
            # same sequence.
            z_arr = np.asarray(z_values, dtype=object)
            order = np.argsort(z_arr, kind="stable")
            self._sorted_z.append(z_arr[order])
            self._sorted_z_ids.append(np.asarray(order, dtype=np.int64))

    def _query_zvalue(self, tree_index: int, q: np.ndarray) -> int:
        # Shift by the same per-dimension minimum used at build time (NOT
        # zorder_values, which would re-shift a single row to the origin).
        grid = np.atleast_1d(self._functions[tree_index].bucketize(q))
        shifted = np.clip(grid - self._grid_mins[tree_index], 0, None)
        limit = (1 << self._bits[tree_index]) - 1
        shifted = np.minimum(shifted, limit)
        return interleave_bits([int(v) for v in shifted], bits=self._bits[tree_index])

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        budget = max(k, int(math.ceil(self.budget_fraction * self.n)))
        per_tree = max(k, budget // self.num_trees)
        seen: set = set()
        candidates: List[int] = []
        for tree_index, tree in enumerate(self._trees):
            z_query = self._query_zvalue(tree_index, q)
            cursor = tree.cursor(z_query)
            taken = 0
            # Alternate the cursor outward: the entries nearest in Z-order
            # are the likeliest hash collisions at the coarsest radii.
            while taken < per_tree:
                left = cursor.peek_left()
                right = cursor.peek_right()
                if left is None and right is None:
                    break
                if right is None or (
                    left is not None and (z_query - left[0]) <= (right[0] - z_query)
                ):
                    entry = cursor.move_left()
                else:
                    entry = cursor.move_right()
                taken += 1
                point_id = entry[1]
                if point_id not in seen:
                    seen.add(point_id)
                    candidates.append(point_id)
        if not candidates:
            candidates = self._fallback_candidates(k)
        ids = np.asarray(candidates, dtype=np.int64)
        dists = point_to_points_distances(q, self.data[ids])
        order = np.lexsort((ids, dists))[:k]
        return QueryResult(
            ids=ids[order],
            distances=dists[order],
            stats={"candidates": float(ids.size)},
        )

    def _fallback_candidates(self, k: int) -> List[int]:
        """Degenerate miss (every tree empty-walked): a random probe so
        the contract holds — drawn from the live ids under tombstones,
        bit-identical to sampling ``range(n)`` without them."""
        if self._tombstones:
            live = self.live_ids()
            return list(self._rng.choice(live, size=min(live.size, 4 * k), replace=False))
        return list(self._rng.choice(self.n, size=min(self.n, 4 * k), replace=False))

    # ------------------------------------------------------------------
    # batched kNN (the fast-backend path)
    # ------------------------------------------------------------------

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Sorted-array batch path (``fast`` kernels only).

        The cursor walk around a query's z-value always consumes a
        contiguous window of the z-sorted order, so the batch path
        replaces each walk with a merge-selection over two sorted
        distance sequences (``searchsorted`` rank arithmetic picks how
        many entries each side of the query contributes), unions the
        per-tree windows, and finishes with one gathered verification +
        ``group_topk`` kernel over the pooled candidates — byte-identical
        to the per-query cursor loop, ties and all.
        """
        kernel = kernels.active()
        if kernel.name != "fast":
            return super()._run_knn(queries, spec)
        k = spec.k
        num_queries = queries.shape[0]
        budget = max(k, int(math.ceil(self.budget_fraction * self.n)))
        per_tree = max(k, budget // self.num_trees)
        counts = np.empty(num_queries, dtype=np.int64)
        id_blocks: List[np.ndarray] = []
        for qi in range(num_queries):
            windows = [
                self._window_ids(
                    tree_index, self._query_zvalue(tree_index, queries[qi]), per_tree
                )
                for tree_index in range(self.num_trees)
            ]
            candidates = np.unique(np.concatenate(windows))
            if candidates.size == 0:
                candidates = np.asarray(self._fallback_candidates(k), dtype=np.int64)
            counts[qi] = candidates.size
            id_blocks.append(candidates)
        ids = np.concatenate(id_blocks) if id_blocks else np.empty(0, dtype=np.int64)
        rep_q = np.repeat(np.arange(num_queries, dtype=np.int64), counts)
        dists = kernel.verify_distances(self.data, ids, queries, rep_q)
        lims, top_ids, top_dists = kernel.group_topk(rep_q, ids, dists, num_queries, k)
        out_ids = np.full((num_queries, k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, k), np.inf, dtype=np.float64)
        per_query = []
        for qi in range(num_queries):
            lo, hi = int(lims[qi]), int(lims[qi + 1])
            out_ids[qi, : hi - lo] = top_ids[lo:hi]
            out_dists[qi, : hi - lo] = top_dists[lo:hi]
            per_query.append({"candidates": float(counts[qi])})
        return BatchResult(
            ids=out_ids,
            distances=out_dists,
            stats=aggregate_stats(tuple(per_query)),
            per_query_stats=tuple(per_query),
        )

    def _window_ids(self, tree_index: int, z_query: int, per_tree: int) -> np.ndarray:
        """The ids the alternating cursor walk takes from one tree —
        computed by merge-rank arithmetic over the two sorted distance
        sequences instead of walking the cursor.  Returned in positional
        (not walk) order: the callers only union the ids and cut by the
        canonical ``(distance, id)`` order, so the walk order is
        irrelevant to the result.
        """
        z_sorted = self._sorted_z[tree_index]
        z_ids = self._sorted_z_ids[tree_index]
        start = int(np.searchsorted(z_sorted, z_query, side="left"))
        # The walk takes at most per_tree entries total, so at most
        # per_tree from either side — bounding the slices keeps the
        # arbitrary-precision subtraction O(per_tree), not O(n).
        left_lo = max(0, start - per_tree)
        if start > 0:
            lefts = z_query - z_sorted[start - 1 : left_lo - 1 if left_lo else None : -1]
        else:
            lefts = z_sorted[:0]
        rights = z_sorted[start : start + per_tree] - z_query
        # left i is consumed at merge rank i + |{rights with dist < d_i}|
        # (a tie goes left first); right j at rank j + |{lefts ≤ d_j}|.
        n_left = n_right = 0
        if lefts.size:
            ranks = np.arange(lefts.size) + np.searchsorted(rights, lefts, side="left")
            n_left = int(np.sum(ranks < per_tree))
        if rights.size:
            ranks = np.arange(rights.size) + np.searchsorted(lefts, rights, side="right")
            n_right = int(np.sum(ranks < per_tree))
        return z_ids[start - n_left : start + n_right]
