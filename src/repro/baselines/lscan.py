"""LScan: linear scan over a random portion of the dataset (§6.1).

The paper's sanity baseline: select a fixed fraction (default 70 %) of the
points uniformly at random at build time and answer every query by scanning
that subset.  Fast to build, dimension-proof, but pays a full scan per query
and misses any neighbour outside the retained portion — which is exactly the
recall ceiling (~0.7) Table 4 shows for it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.datasets.distance import point_to_points_distances
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator


@register_index("lscan", "linear-scan")
class LinearScan(ANNIndex):
    """Scan a random ``portion`` of the points for every query."""

    name = "LScan"

    #: The scan subset is intersected with the live set before scanning.
    _knn_filters_tombstones = True

    def __init__(
        self,
        *,
        portion: float = 0.7,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if not 0.0 < portion <= 1.0:
            raise ValueError(f"portion must be in (0, 1], got {portion}")
        self.portion = float(portion)
        self._rng = as_generator(seed)
        self._subset: np.ndarray | None = None

    def _fit(self) -> None:
        size = max(1, int(round(self.portion * self.n)))
        self._subset = np.sort(self._rng.choice(self.n, size=size, replace=False))

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        subset = self._subset
        if self._tombstones:
            subset = subset[~self._tombstones.contains(subset)]
            if subset.size == 0:
                return QueryResult(
                    ids=np.empty(0, dtype=np.int64),
                    distances=np.empty(0, dtype=np.float64),
                    stats={"candidates": 0.0},
                )
        dists = point_to_points_distances(q, self.data[subset])
        k_eff = min(k, subset.size)
        part = np.argpartition(dists, k_eff - 1)[:k_eff]
        order = np.argsort(dists[part], kind="stable")
        chosen = part[order]
        return QueryResult(
            ids=subset[chosen],
            distances=dists[chosen],
            stats={"candidates": float(subset.size)},
        )
