"""C2LSH: LSH with dynamic collision counting (Gan et al., SIGMOD'12).

One of the radius-enlarging methods of §3.1.  Like QALSH it counts, per
point, in how many of m hash functions the point collides with the query,
and promotes a point to candidate once the count reaches a threshold l.
The differences from QALSH that this implementation preserves:

* **bucket-aligned windows** — C2LSH uses the classic offset hash
  ``h(o) = ⌊(a·o + b)/w⌋``; the round-R bucket is the *grid cell*
  ``⌊h(o)/R⌋`` ("virtual rehashing"), not an interval centred on the
  query.  The query can sit near a cell boundary, which is exactly the
  estimation-granularity weakness ("bucket-to-bucket") the paper's
  taxonomy attributes to it (§3.2).
* **count-from-scratch rounds** — grid cells for R and c·R are not nested
  (c is not an integer), so each round recounts collisions inside the new
  cells rather than expanding cursors.

Parameters follow the published recipe: false-positive fraction
β = 100/n, error probability δ = 1/e, collision threshold percentage α
between p2 and p1 chosen to close both Chernoff tails, and
m = ⌈(√(ln(1/δ)) + √(ln(2/β)))² / (2(p1 − p2)²)⌉ hash functions.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro import kernels
from repro.baselines.base import ANNIndex, BatchResult, QueryResult
from repro.core.hashing import collision_probability
from repro.datasets.distance import point_to_points_distances
from repro.queries import Knn
from repro.registry import register_index
from repro.utils.rng import RandomState, as_generator


def derive_parameters(
    n: int, c: float, w: float, delta: float, beta: float
) -> Tuple[int, float]:
    """(m, alpha) for C2LSH's collision-counting guarantee.

    p1/p2 come from Eq. 2's closed form at distances 1 and c for bucket
    width w; the two-sided Hoeffding argument mirrors QALSH's.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if c <= 1.0:
        raise ValueError(f"approximation ratio c must exceed 1, got {c}")
    p1 = collision_probability(1.0, w)
    p2 = collision_probability(c, w)
    ln_inv_delta = math.log(1.0 / delta)
    ln_two_beta = math.log(2.0 / beta)
    eta = math.sqrt(ln_two_beta / ln_inv_delta)
    alpha = (eta * p1 + p2) / (1.0 + eta)
    m = math.ceil(
        (math.sqrt(ln_two_beta) + math.sqrt(ln_inv_delta)) ** 2
        / (2.0 * (p1 - p2) ** 2)
    )
    return int(m), float(alpha)


@register_index("c2lsh")
class C2LSH(ANNIndex):
    """Collision-counting LSH over bucket-aligned virtual rehashing."""

    name = "C2LSH"

    def __init__(
        self,
        *,
        c: float = 1.5,
        w: float = 1.0,
        delta: float = 1.0 / math.e,
        false_positive_base: float = 100.0,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if c <= 1.0:
            raise ValueError(f"approximation ratio c must exceed 1, got {c}")
        if w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        self.c = float(c)
        self.w = float(w)
        self.delta = float(delta)
        self.false_positive_base = float(false_positive_base)
        self._rng = as_generator(seed)
        # β, m, α and the collision threshold depend on n; derived in _fit()
        # (and re-derived whenever add()'s re-fit grows the dataset).
        self.beta: float | None = None
        self.m: int | None = None
        self.alpha: float | None = None
        self.collision_threshold: int | None = None
        # Raw shifted projections a_i·o + b_i, sorted per hash function.
        self._sorted_raw: np.ndarray | None = None  # (m, n)
        self._sorted_ids: np.ndarray | None = None  # (m, n)
        self._query_directions: np.ndarray | None = None  # (m, d)
        self._offsets: np.ndarray | None = None  # (m,)
        self._unit_width: float = 1.0

    def _fit(self) -> None:
        self.beta = min(0.5, self.false_positive_base / self.n)
        self.m, self.alpha = derive_parameters(self.n, self.c, self.w, self.delta, self.beta)
        self.collision_threshold = max(1, math.ceil(self.alpha * self.m))
        self._query_directions = self._rng.normal(size=(self.m, self.d))
        raw = self.data @ self._query_directions.T  # (n, m), before offsets
        # The paper's radius-1 is meaningless on unnormalised data: scale
        # the base bucket width to the projection spread, as for QALSH.
        center = float(np.median(raw))
        spread = float(np.median(np.abs(raw - center))) or 1.0
        self._unit_width = self.w * spread / 16.0
        self._offsets = self._rng.uniform(0.0, self._unit_width, size=self.m)
        shifted = raw + self._offsets
        order = np.argsort(shifted, axis=0, kind="stable")
        self._sorted_ids = order.T.copy()
        self._sorted_raw = np.take_along_axis(shifted, order, axis=0).T.copy()

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        query_shifted = (self._query_directions @ q) + self._offsets  # (m,)
        verified: List[Tuple[int, float]] = []
        verified_mask = np.zeros(self.n, dtype=bool)
        budget = int(math.ceil(self.beta * self.n)) + k
        scale = 1.0  # radius multiplier R = 1, c, c², ... in spread units
        rounds = 0
        for _ in range(64):
            rounds += 1
            cell_width = self._unit_width * scale
            counts = self._count_collisions(query_shifted, cell_width)
            fresh = np.flatnonzero(
                (counts >= self.collision_threshold) & ~verified_mask
            )
            if fresh.size:
                verified_mask[fresh] = True
                dists = point_to_points_distances(q, self.data[fresh])
                verified.extend(
                    (int(pid), float(dist)) for pid, dist in zip(fresh, dists)
                )
            radius_now = self._unit_width * scale / self.w  # grid cell ~ w·R
            within = sum(1 for _, dist in verified if dist <= self.c * radius_now)
            if within >= k or len(verified) >= budget:
                break
            scale *= self.c
        verified.sort(key=lambda pair: (pair[1], pair[0]))
        top = verified[:k]
        return QueryResult(
            ids=np.asarray([pid for pid, _ in top], dtype=np.int64),
            distances=np.asarray([dist for _, dist in top], dtype=np.float64),
            stats={
                "candidates": float(len(verified)),
                "m": float(self.m),
                "rounds": float(rounds),
            },
        )

    # ------------------------------------------------------------------
    # batched kNN (the fast-backend path)
    # ------------------------------------------------------------------

    #: Cap on (block queries × n) collision-matrix entries per sweep.
    _BATCH_BLOCK_ENTRIES = 8_000_000

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Round-synchronous batch path over the sorted projections.

        C2LSH's rounds count collisions from scratch (grid cells for R
        and c·R are not nested), so the batch path recounts per round
        with vectorised cell-boundary ``searchsorted``s for every active
        query, verifies all fresh threshold-crossers with one gathered
        kernel call, and applies per-query termination exactly as the
        loop does.  Query projections stay per-query GEMVs — the floored
        cell ids must see the loop's exact bits.  Active only under the
        ``fast`` kernel backend; byte-identical to the per-query loop.
        """
        if kernels.active().name != "fast":
            return super()._run_knn(queries, spec)
        results: List[QueryResult] = []
        block = max(1, self._BATCH_BLOCK_ENTRIES // max(1, self.n))
        for start in range(0, queries.shape[0], block):
            results.extend(self._knn_block(queries[start : start + block], spec.k))
        return BatchResult.from_queries(results, k=spec.k)

    def _knn_block(self, queries: np.ndarray, k: int) -> List[QueryResult]:
        kernel = kernels.active()
        num_queries = queries.shape[0]
        query_shifted = np.stack(
            [(self._query_directions @ q) + self._offsets for q in queries]
        )
        budget = int(math.ceil(self.beta * self.n)) + k
        verified_mask = np.zeros((num_queries, self.n), dtype=bool)
        pool_ids: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        pool_dists: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        verified_count = np.zeros(num_queries, dtype=np.int64)
        rounds = np.zeros(num_queries, dtype=np.int64)
        active = np.ones(num_queries, dtype=bool)
        scale = 1.0
        for _ in range(64):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            rounds[idx] += 1
            cell_width = self._unit_width * scale
            counts = np.zeros((idx.size, self.n), dtype=np.int32)
            for i in range(self.m):
                keys = self._sorted_raw[i]
                ids_i = self._sorted_ids[i]
                cell = np.floor(query_shifted[idx, i] / cell_width)
                lo = cell * cell_width
                start = np.searchsorted(keys, lo, side="left")
                stop = np.searchsorted(keys, lo + cell_width, side="left")
                # Cell slices hold distinct ids per hash: fancy-index add
                # is exact and far cheaper than np.add.at.
                for pos in range(idx.size):
                    if stop[pos] > start[pos]:
                        counts[pos, ids_i[start[pos] : stop[pos]]] += 1
            fresh_q: List[np.ndarray] = []
            fresh_ids: List[np.ndarray] = []
            for pos, a in enumerate(idx):
                fresh = np.flatnonzero(
                    (counts[pos] >= self.collision_threshold) & ~verified_mask[a]
                )
                if fresh.size:
                    verified_mask[a, fresh] = True
                    fresh_q.append(np.full(fresh.size, a, dtype=np.int64))
                    fresh_ids.append(fresh)
            if fresh_ids:
                rep_q = np.concatenate(fresh_q)
                ids = np.concatenate(fresh_ids)
                dists = kernel.verify_distances(self.data, ids, queries, rep_q)
                offset = 0
                for chunk_q, chunk_ids in zip(fresh_q, fresh_ids):
                    a = int(chunk_q[0])
                    pool_ids[a].append(chunk_ids)
                    pool_dists[a].append(dists[offset : offset + chunk_ids.size])
                    offset += chunk_ids.size
                    verified_count[a] += chunk_ids.size
            radius_now = self._unit_width * scale / self.w
            threshold = self.c * radius_now
            for a in idx:
                within = sum(
                    int((chunk <= threshold).sum()) for chunk in pool_dists[a]
                )
                if within >= k or verified_count[a] >= budget:
                    active[a] = False
            scale *= self.c
        results: List[QueryResult] = []
        for a in range(num_queries):
            if pool_ids[a]:
                all_ids = np.concatenate(pool_ids[a])
                all_dists = np.concatenate(pool_dists[a])
                order = np.lexsort((all_ids, all_dists))[:k]
                top_ids, top_dists = all_ids[order], all_dists[order]
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float64)
            results.append(
                QueryResult(
                    ids=top_ids,
                    distances=top_dists,
                    stats={
                        "candidates": float(verified_count[a]),
                        "m": float(self.m),
                        "rounds": float(rounds[a]),
                    },
                )
            )
        return results

    def _count_collisions(self, query_shifted: np.ndarray, cell_width: float) -> np.ndarray:
        """Collision counts for the bucket-aligned cells of width *cell_width*.

        A point collides on hash i iff it falls into the same grid cell as
        the query: ``⌊x/cell⌋ == ⌊q/cell⌋`` — an interval scan on the
        sorted projections.
        """
        counts = np.zeros(self.n, dtype=np.int32)
        for i in range(self.m):
            cell = math.floor(query_shifted[i] / cell_width)
            lo = cell * cell_width
            hi = lo + cell_width
            keys = self._sorted_raw[i]
            start = int(np.searchsorted(keys, lo, side="left"))
            stop = int(np.searchsorted(keys, hi, side="left"))
            if stop > start:
                counts[self._sorted_ids[i][start:stop]] += 1
        return counts
