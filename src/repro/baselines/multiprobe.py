"""Multi-Probe LSH (the probing-sequence baseline, §3.1).

Instead of building many hash tables, Multi-Probe keeps a few and, per
table, probes a *sequence* of nearby buckets ordered by how likely they are
to hold the query's neighbours.  The ordering is query-directed: perturbing
hash axis i by δ ∈ {−1, +1} costs the squared distance from the query's
projection to that bucket boundary, and perturbation *sets* are enumerated
in increasing total cost with the classic heap of shift/expand operations
(Lv et al., VLDB'07).

The known weakness PM-LSH targets (§1): bucket-granular probing estimates
distances coarsely, so many probed points are far in the original space.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import ANNIndex, QueryResult
from repro.core.hashing import LSHFunction
from repro.datasets.distance import point_to_points_distances
from repro.registry import register_index
from repro.utils.heap import MinHeap
from repro.utils.rng import RandomState, as_generator, spawn_generators


@register_index("multi-probe", "mplsh")
class MultiProbeLSH(ANNIndex):
    """Multi-Probe LSH over L tables of m bucketed hashes each.

    Parameters
    ----------
    num_tables / m / w:
        Table count, hashes per table, bucket width.
    num_probes:
        Buckets probed per table per query (the probing-sequence length,
        including the home bucket).
    w:
        Bucket width.  ``None`` (default) calibrates it at build time to
        ``width_scale × std`` of the projections, so bucket occupancy is
        data-scale invariant (a fixed absolute width degenerates to empty
        or all-containing buckets depending on coordinate magnitudes).
    max_candidates_fraction:
        Global candidate cap per query, as a fraction of n.
    """

    name = "Multi-Probe"

    def __init__(
        self,
        *,
        num_tables: int = 4,
        m: int = 10,
        w: float | None = None,
        width_scale: float = 2.0,
        num_probes: int = 24,
        max_candidates_fraction: float = 0.12,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if num_tables <= 0 or num_probes <= 0:
            raise ValueError("num_tables and num_probes must be positive")
        if w is not None and w <= 0:
            raise ValueError(f"bucket width w must be positive, got {w}")
        if width_scale <= 0:
            raise ValueError(f"width_scale must be positive, got {width_scale}")
        if not 0.0 < max_candidates_fraction <= 1.0:
            raise ValueError(
                f"max_candidates_fraction must be in (0, 1], got {max_candidates_fraction}"
            )
        self.num_tables = num_tables
        self.m = m
        self.w = None if w is None else float(w)
        self._w_explicit = w is not None
        self.width_scale = float(width_scale)
        self.num_probes = num_probes
        self.max_candidates_fraction = max_candidates_fraction
        self._rng = as_generator(seed)
        self._functions: List[LSHFunction] = []
        self._tables: List[Dict[tuple, List[int]]] = []
        self._overfetch_cache: Tuple[int, int] | None = None

    def _calibrated_width(self) -> float:
        """Projection-scale-aware bucket width: ``width_scale`` times the
        median per-direction std of sampled Gaussian projections."""
        sample_size = min(self.n, 1024)
        sample = self.data[
            self._rng.choice(self.n, size=sample_size, replace=False)
        ]
        directions = self._rng.normal(size=(8, self.d))
        spreads = (sample @ directions.T).std(axis=0)
        return max(self.width_scale * float(np.median(spreads)), 1e-12)

    def _fit(self) -> None:
        # Recalibrate on every fit unless the caller pinned w: a re-fit may
        # bind a dataset at a different scale than the one w was tuned to.
        if not self._w_explicit:
            self.w = self._calibrated_width()
        self._functions = [
            LSHFunction(self.d, self.m, w=self.w, seed=child)
            for child in spawn_generators(self._rng, self.num_tables)
        ]
        self._tables = []
        for function in self._functions:
            buckets = function.bucketize(self.data)
            table: Dict[tuple, List[int]] = {}
            for point_id, row in enumerate(buckets):
                table.setdefault(tuple(int(b) for b in row), []).append(point_id)
            self._tables.append(table)

    # ------------------------------------------------------------------
    # query-directed probing sequence
    # ------------------------------------------------------------------

    @staticmethod
    def perturbation_sequence(
        to_lower: np.ndarray, to_upper: np.ndarray, count: int
    ) -> List[List[Tuple[int, int]]]:
        """First *count* perturbation sets in increasing score order.

        Each perturbation set is a list of ``(axis, δ)`` pairs with
        δ ∈ {−1, +1}; its score is the sum of squared boundary distances
        x_axis(δ)².  Enumeration uses the shift/expand min-heap over the
        2m sorted elementary perturbations, which generates sets in exactly
        ascending score without materialising the 3^m-sized space.
        """
        m = to_lower.shape[0]
        # Elementary perturbations sorted by score: z_j = (axis, delta).
        elementary: List[Tuple[float, int, int]] = []
        for axis in range(m):
            elementary.append((float(to_lower[axis] ** 2), axis, -1))
            elementary.append((float(to_upper[axis] ** 2), axis, +1))
        elementary.sort(key=lambda item: item[0])
        scores = np.asarray([item[0] for item in elementary])

        def valid(index_set: Tuple[int, ...]) -> bool:
            axes = [elementary[j][1] for j in index_set]
            return len(axes) == len(set(axes))

        def total(index_set: Tuple[int, ...]) -> float:
            return float(scores[list(index_set)].sum())

        sequence: List[List[Tuple[int, int]]] = [[]]  # home bucket first
        if count <= 1 or not elementary:
            return sequence[:count]
        heap = MinHeap()
        first = (0,)
        heap.push(total(first), first)
        emitted = set()
        while heap and len(sequence) < count:
            _, index_set = heap.pop()
            if index_set in emitted:
                continue
            emitted.add(index_set)
            if valid(index_set):
                sequence.append(
                    [(elementary[j][1], elementary[j][2]) for j in index_set]
                )
            last = index_set[-1]
            if last + 1 < len(elementary):
                # shift: replace the max element with its successor
                shifted = index_set[:-1] + (last + 1,)
                heap.push(total(shifted), shifted)
                # expand: append the successor
                expanded = index_set + (last + 1,)
                heap.push(total(expanded), expanded)
        return sequence

    def _probe_keys(self, function: LSHFunction, q: np.ndarray) -> List[tuple]:
        home = np.atleast_1d(function.bucketize(q))
        to_lower, to_upper = function.residuals(q)
        sets = self.perturbation_sequence(to_lower, to_upper, self.num_probes)
        keys = []
        for perturbation in sets:
            bucket = home.copy()
            for axis, delta in perturbation:
                bucket[axis] += delta
            keys.append(tuple(int(b) for b in bucket))
        return keys

    def query(self, q: np.ndarray, k: int) -> QueryResult:
        self._require_built()
        q = self._validate_query(q, k)
        max_candidates = max(k, int(self.max_candidates_fraction * self.n))
        seen: set = set()
        candidates: List[int] = []
        for function, table in zip(self._functions, self._tables):
            if len(candidates) >= max_candidates:
                break
            for key in self._probe_keys(function, q):
                for point_id in table.get(key, []):
                    if point_id not in seen:
                        seen.add(point_id)
                        candidates.append(point_id)
                if len(candidates) >= max_candidates:
                    break
        if not candidates:
            candidates = self._fallback_candidates(k)
        ids = np.asarray(candidates, dtype=np.int64)
        dists = point_to_points_distances(q, self.data[ids])
        order = np.lexsort((ids, dists))[:k]
        return QueryResult(
            ids=ids[order],
            distances=dists[order],
            stats={"candidates": float(ids.size)},
        )

    def _fallback_candidates(self, k: int) -> List[int]:
        """Degenerate miss (no probed bucket held anything): a random probe
        so the contract holds — drawn from the live ids under tombstones so
        the overfetch bound stays bucket-structural; without tombstones the
        draw is bit-identical to sampling ``range(n)``."""
        rng = as_generator(self._rng)
        if self._tombstones:
            live = self.live_ids()
            return list(rng.choice(live, size=min(live.size, 4 * k), replace=False))
        return list(rng.choice(self.n, size=min(self.n, 4 * k), replace=False))

    def _tombstone_overfetch(self, k: int) -> int:
        """Dead ids reachable by one query: per table, the ``num_probes``
        worst dead-bucket counts (one probed bucket each), summed over
        tables.  Cached per write-epoch, like E2LSH's bound."""
        if self._overfetch_cache is not None and self._overfetch_cache[0] == self.epoch:
            return self._overfetch_cache[1]
        dead = self._tombstones.ids()
        bound = 0
        for function in self._functions:
            buckets = np.atleast_2d(function.bucketize(self.data[dead]))
            _, counts = np.unique(buckets, axis=0, return_counts=True)
            if counts.size:
                worst = np.sort(counts)[::-1][: self.num_probes]
                bound += int(worst.sum())
        self._overfetch_cache = (self.epoch, bound)
        return bound
