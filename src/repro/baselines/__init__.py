"""Baseline algorithms PM-LSH is evaluated against (§3, §6.1).

Every algorithm — including PM-LSH itself — implements the
:class:`~repro.baselines.base.ANNIndex` interface so the evaluation harness
treats them uniformly:

* :class:`~repro.baselines.srs.SRS` — metric-indexing baseline (R-tree +
  incremental NN in the projected space, χ² early termination).
* :class:`~repro.baselines.qalsh.QALSH` — radius-enlarging baseline with
  query-aware hashes over B+-trees and virtual rehashing.
* :class:`~repro.baselines.multiprobe.MultiProbeLSH` — probing-sequence
  baseline with query-directed perturbation sets.
* :class:`~repro.baselines.rlsh.RLSH` — PM-LSH's algorithm with the R-tree
  substituted for the PM-tree (the §6.1 ablation).
* :class:`~repro.baselines.lscan.LinearScan` — random-portion linear scan.
* :class:`~repro.baselines.e2lsh.E2LSH` — the basic LSH scheme of §2.2.
* :class:`~repro.baselines.exact.ExactKNN` — brute-force ground truth.
* :class:`~repro.baselines.c2lsh.C2LSH` — dynamic collision counting, the
  other radius-enlarging method §3.1 describes.
* :class:`~repro.baselines.lsb.LSBForest` — Z-order LSB-trees, the third
  radius-enlarging method §3.1 describes.
"""

from repro.baselines.base import ANNIndex, BatchResult, QueryResult
from repro.baselines.c2lsh import C2LSH
from repro.baselines.e2lsh import E2LSH
from repro.baselines.exact import ExactKNN
from repro.baselines.lsb import LSBForest
from repro.baselines.lscan import LinearScan
from repro.baselines.multiprobe import MultiProbeLSH
from repro.baselines.qalsh import QALSH
from repro.baselines.rlsh import RLSH
from repro.baselines.srs import SRS

__all__ = [
    "ANNIndex",
    "BatchResult",
    "C2LSH",
    "E2LSH",
    "ExactKNN",
    "LSBForest",
    "LinearScan",
    "MultiProbeLSH",
    "QALSH",
    "QueryResult",
    "RLSH",
    "SRS",
]
