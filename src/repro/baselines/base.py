"""The common interface every ANN algorithm in this library implements."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one (c, k)-ANN query.

    ``ids`` and ``distances`` are parallel arrays sorted by ascending
    distance (original space).  ``stats`` carries per-query diagnostics —
    candidates verified, range-query rounds, distance computations — used by
    the harness and the ablation benches.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 1:
            raise ValueError(
                f"ids and distances must be matching 1-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    def __len__(self) -> int:
        return int(self.ids.size)

    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, float]], stats: Dict[str, float] | None = None
    ) -> "QueryResult":
        """Build from ``(id, distance)`` pairs, sorting by distance."""
        pairs = sorted(pairs, key=lambda pair: pair[1])
        ids = np.asarray([p[0] for p in pairs], dtype=np.int64)
        distances = np.asarray([p[1] for p in pairs], dtype=np.float64)
        return cls(ids=ids, distances=distances, stats=stats or {})


class ANNIndex(abc.ABC):
    """Abstract (c, k)-ANN index over a fixed dataset.

    Implementations receive the dataset at construction and become
    queryable after :meth:`build`.  ``query`` returns the approximate k
    nearest neighbours by *original-space* distance.
    """

    #: Human-readable algorithm name (used in result tables).
    name: str = "ANNIndex"

    def __init__(self, data: np.ndarray) -> None:
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty 2-D array, got shape {data.shape}")
        self.data = data
        self._built = False

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def d(self) -> int:
        return self.data.shape[1]

    @property
    def is_built(self) -> bool:
        return self._built

    @abc.abstractmethod
    def build(self) -> "ANNIndex":
        """Construct the index; returns self for chaining."""

    @abc.abstractmethod
    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Approximate k nearest neighbours of *q*."""

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"{self.name}: call build() before query()")

    def _validate_query(self, q: np.ndarray, k: int) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.d,):
            raise ValueError(f"query must have shape ({self.d},), got {q.shape}")
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}], got {k}")
        return q
