"""The common interface every ANN algorithm in this library implements.

Lifecycle (faiss/sklearn-style)
-------------------------------
An index is constructed from *parameters only*, then bound to data:

>>> index = SomeIndex(seed=0)          # no data yet
>>> index.fit(data)                    # build over an (n, d) matrix
>>> batch = index.search(queries, k)   # (Q, d) -> BatchResult
>>> index.add(new_points)              # dynamic growth

Query model
-----------
``run(queries, spec)`` is the polymorphic entry point: the spec —
:class:`~repro.queries.Knn` or :class:`~repro.queries.Range` — selects
the query type and carries per-call runtime knobs (candidate ``budget``,
approximation ratio ``c``).  ``search(queries, k)`` is sugar for
``run(queries, Knn(k))``, ``range_search(queries, r)`` for
``run(queries, Range(r))``, and ``closest_pairs(m)`` answers closest-pair
search over the indexed set.  Every index answers every query type: the
base class supplies exact brute-force fallbacks for range and
closest-pair search, and algorithms with a native sublinear path
(PM-LSH) override them.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lifecycle.compaction import CompactionResult, dense_id_map
from repro.lifecycle.tombstones import TombstoneSet
from repro.queries import (
    ClosestPairResult,
    Knn,
    QuerySpec,
    Range,
    RangeResult,
    as_query_spec,
    sort_pairs,
)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one (c, k)-ANN query.

    ``ids`` and ``distances`` are parallel arrays sorted by ascending
    distance (original space).  ``stats`` carries per-query diagnostics —
    candidates verified, range-query rounds, distance computations — used by
    the harness and the ablation benches.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 1:
            raise ValueError(
                f"ids and distances must be matching 1-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    def __len__(self) -> int:
        return int(self.ids.size)

    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, float]], stats: Dict[str, float] | None = None
    ) -> "QueryResult":
        """Build from ``(id, distance)`` pairs, sorting by ``(distance, id)``.

        The secondary id key matches the sharded engine's merge order, so
        single-index and merged results agree even on tied distances.
        """
        pairs = sorted(pairs, key=lambda pair: (pair[1], pair[0]))
        ids = np.asarray([p[0] for p in pairs], dtype=np.int64)
        distances = np.asarray([p[1] for p in pairs], dtype=np.float64)
        return cls(ids=ids, distances=distances, stats=stats or {})


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched ``search(queries, k)`` call.

    ``ids`` and ``distances`` are ``(Q, k)`` matrices, row i answering
    query i.  Rows where an algorithm returned fewer than k neighbours are
    right-padded with id ``-1`` and distance ``inf`` (so the matrices stay
    rectangular); ``self[i]`` strips the padding again.

    ``stats`` aggregates the per-query diagnostic dictionaries: every key
    appearing in any query's stats is averaged over the queries that
    reported it, and ``"queries"`` records Q.  The raw dictionaries remain
    available in ``per_query_stats``.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)
    per_query_stats: Tuple[Dict[str, float], ...] = ()

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 2:
            raise ValueError(
                f"ids and distances must be matching 2-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    @property
    def num_queries(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])

    def __len__(self) -> int:
        return self.num_queries

    def __getitem__(self, index: int) -> QueryResult:
        """The i-th query's result, with padding stripped."""
        row_ids = self.ids[index]  # raises IndexError for out-of-range index
        valid = row_ids >= 0
        position = index if index >= 0 else self.num_queries + index
        stats = (
            dict(self.per_query_stats[position])
            if position < len(self.per_query_stats)
            else {}
        )
        return QueryResult(
            ids=row_ids[valid], distances=self.distances[index][valid], stats=stats
        )

    @classmethod
    def from_queries(cls, results: List[QueryResult], k: int) -> "BatchResult":
        """Stack per-query results into one padded batch."""
        num_queries = len(results)
        ids = np.full((num_queries, k), -1, dtype=np.int64)
        distances = np.full((num_queries, k), np.inf, dtype=np.float64)
        for i, result in enumerate(results):
            count = min(len(result), k)
            ids[i, :count] = result.ids[:count]
            distances[i, :count] = result.distances[:count]
        per_query = tuple(dict(result.stats) for result in results)
        return cls(
            ids=ids,
            distances=distances,
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )


def aggregate_stats(per_query: Tuple[Dict[str, float], ...]) -> Dict[str, float]:
    """Mean of every per-query stat key, plus the query count."""
    aggregated: Dict[str, float] = {"queries": float(len(per_query))}
    keys = {key for stats in per_query for key in stats}
    for key in sorted(keys):
        values = [stats[key] for stats in per_query if key in stats]
        if values:
            aggregated[key] = float(np.mean(values))
    return aggregated


class ANNIndex(abc.ABC):
    """Abstract (c, k)-ANN index with a fit/add/search lifecycle.

    Implementations are constructed from parameters only and bound to a
    dataset by :meth:`fit`; :meth:`run` answers a whole query matrix under
    any :class:`~repro.queries.QuerySpec`, :meth:`query` a single vector,
    both by *original-space* distance.  :meth:`add` grows the indexed set
    dynamically.

    Subclasses implement :meth:`_fit` (build the structures over
    ``self.data``) and :meth:`query`; they may override :meth:`_run_knn`
    with a vectorised batch path, :meth:`_run_range` /
    :meth:`_closest_pairs` with native sublinear paths (the defaults are
    exact brute force), and :meth:`_add` with an incremental update path
    (the default re-fits over the concatenated dataset).
    """

    #: Human-readable algorithm name (used in result tables).
    name: str = "ANNIndex"

    #: Whether :meth:`_run_knn` / :meth:`_run_range` honour the spec's
    #: ``budget``/``c`` knobs.  Indexes that leave these False still answer
    #: overridden specs, but the result stats carry ``overrides_ignored``
    #: so callers can tell.
    _honours_knn_overrides: bool = False
    _honours_range_overrides: bool = False

    #: Whether :meth:`_run_knn` drops tombstoned ids itself (the exact
    #: oracle scans live rows only; PM-LSH masks dead leaf members; the
    #: sharded engine forwards to filtering shards).  When False,
    #: :meth:`run` over-fetches ``k + #dead`` and strips dead ids before
    #: the final k cut — correct for any backend, at extra candidate cost.
    _knn_filters_tombstones: bool = False

    #: Constructor kwargs captured by ``__init_subclass__`` (used by
    #: :func:`repro.lifecycle.compaction.compact_index` to clone the
    #: index into a fresh object with identical parameters).
    _init_kwargs: Optional[Dict] = None

    def __init_subclass__(cls, **kwargs) -> None:
        """Wrap each subclass ``__init__`` to record its keyword arguments.

        Every v2.0 constructor is keyword-only, so the outermost call's
        kwargs fully describe how to build an equivalent index; nested
        ``super().__init__`` calls must not overwrite them, hence the
        "first writer wins" guard.
        """
        super().__init_subclass__(**kwargs)
        init = cls.__dict__.get("__init__")
        if init is None or getattr(init, "_captures_init_kwargs", False):
            return

        @functools.wraps(init)
        def wrapper(self, *args, **kw):
            if "_init_kwargs" not in self.__dict__:
                self.__dict__["_init_kwargs"] = dict(kw)
            init(self, *args, **kw)

        wrapper._captures_init_kwargs = True
        cls.__init__ = wrapper

    #: Cap on the entries of one block × n × d difference tensor inside the
    #: brute-force range / closest-pair fallbacks (~32 MB of float64).
    _FALLBACK_BLOCK_ENTRIES = 4_000_000

    def _fallback_block_rows(self) -> int:
        return max(1, self._FALLBACK_BLOCK_ENTRIES // max(1, self.n * self.d))

    def __init__(self) -> None:
        self.data: Optional[np.ndarray] = None
        self._built = False
        self._tombstones = TombstoneSet()
        #: Monotonically increasing write-epoch: every fit/add/delete/
        #: compact bumps it, and ``save()`` stamps it into snapshots so
        #: :class:`~repro.lifecycle.Replica` can order them.
        self._index_epoch = 0
        #: Cardinality at the last (re-)fit — the growth-ratio baseline
        #: for :class:`~repro.lifecycle.CompactionPolicy`.
        self._fitted_n = 0
        #: Injected metrics registry (None -> the process default); see
        #: the :attr:`metrics` property.
        self._metrics = None

    @property
    def metrics(self):
        """The :class:`~repro.obs.metrics.MetricsRegistry` this index
        publishes into — the process-global default unless one was
        injected (directly, or by the engine/server wrapping it)."""
        if self._metrics is None:
            from repro.obs.metrics import default_registry

            self._metrics = default_registry()
            self._on_metrics_changed()
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        if registry is self._metrics:
            return  # already bound — keep the existing instrument scope
        self._metrics = registry
        self._on_metrics_changed()

    def _on_metrics_changed(self) -> None:
        """Subclass hook fired when the registry is (re)bound — rebuild
        cached instrument references, forward the registry to shards."""

    # ------------------------------------------------------------------
    # data binding
    # ------------------------------------------------------------------

    @staticmethod
    def _check_data(data: np.ndarray) -> np.ndarray:
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty 2-D array, got shape {data.shape}")
        return data

    def _set_data(self, data: np.ndarray) -> None:
        self.data = self._check_data(data)

    @property
    def n(self) -> int:
        if self.data is None:
            raise RuntimeError(f"{self.name}: no dataset bound; call fit(data) first")
        return self.data.shape[0]

    @property
    def d(self) -> int:
        if self.data is None:
            raise RuntimeError(f"{self.name}: no dataset bound; call fit(data) first")
        return self.data.shape[1]

    @property
    def ntotal(self) -> int:
        """Number of stored vectors, dead rows included; 0 before ``fit``."""
        return 0 if self.data is None else int(self.data.shape[0])

    @property
    def nlive(self) -> int:
        """Number of *living* vectors: ``ntotal`` minus the tombstones.

        Queries are answered over the live set — ``search`` validates
        ``k <= nlive`` — while ``ntotal`` keeps counting storage until a
        :meth:`compact` reclaims the dead rows.
        """
        return self.ntotal - len(self._tombstones)

    @property
    def num_tombstones(self) -> int:
        """Number of ids deleted since the last fit/compact."""
        return len(self._tombstones)

    @property
    def tombstones(self) -> TombstoneSet:
        """The tombstone set itself (treat as read-only; use :meth:`delete`)."""
        return self._tombstones

    @property
    def epoch(self) -> int:
        """Monotonic write-epoch: bumps on every fit/add/delete/compact.

        Never reset — ``save()`` stamps it into snapshots, and
        :meth:`repro.lifecycle.Replica.refresh` swaps only to archives
        with a strictly greater stamp.
        """
        return self._index_epoch

    @property
    def fitted_n(self) -> int:
        """Cardinality at the last (re-)fit — the baseline the
        growth-ratio compaction trigger measures drift against."""
        return self._fitted_n

    def live_ids(self) -> np.ndarray:
        """Sorted global ids of the living points."""
        return self._tombstones.live_ids(self.ntotal)

    @property
    def is_built(self) -> bool:
        return self._built

    def __repr__(self) -> str:
        if self.data is None:
            return f"{type(self).__name__}(unfitted)"
        state = "built" if self._built else "unbuilt"
        return f"{type(self).__name__}(d={self.d}, ntotal={self.ntotal}, {state})"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "ANNIndex":
        """Bind *data* and build the index; returns self for chaining.

        Calling ``fit`` again re-builds over the new dataset.
        """
        self._set_data(data)
        self._built = False
        self._tombstones = TombstoneSet()
        self._fit()
        self._built = True
        self._fitted_n = self.n
        self._index_epoch += 1
        return self

    @abc.abstractmethod
    def _fit(self) -> None:
        """Build the index structures over ``self.data`` (subclass hook)."""

    def add(self, points: np.ndarray) -> np.ndarray:
        """Add *points* to a fitted index; returns the ids assigned to them.

        The default implementation re-fits over the concatenated dataset —
        always correct, and it re-derives every n-dependent quantity
        (candidate budgets, hash counts) for the grown cardinality.
        Algorithms with a cheaper incremental path override :meth:`_add`.
        """
        self._require_built()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.d:
            raise ValueError(
                f"new points must have dimension {self.d}, got shape {points.shape}"
            )
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        ids = self._add(points)
        self._index_epoch += 1
        return ids

    def _add(self, points: np.ndarray) -> np.ndarray:
        start = self.n
        self._set_data(np.vstack([self.data, points]))
        self._fit()
        return np.arange(start, self.n, dtype=np.int64)

    def delete(self, ids: np.ndarray) -> np.ndarray:
        """Tombstone the points with the given global *ids*.

        A logical delete: the rows stay in storage (``ntotal`` is
        unchanged; ``nlive`` shrinks) but every query path filters them
        out, so results are identical to an index that never held those
        points.  Deleted ids are **never reused** — ``add()`` keeps
        assigning from ``ntotal`` — until a :meth:`compact` renumbers the
        survivors densely.  Returns the deleted ids, sorted and deduplicated.

        Raises ``ValueError`` for out-of-range ids and for ids that are
        already deleted (a double delete is almost always a caller bug).
        Deleting every point is allowed; searches then reject any ``k``
        until new points arrive or the index is re-fitted.
        """
        self._require_built()
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return ids
        if ids[0] < 0 or ids[-1] >= self.ntotal:
            raise ValueError(
                f"{self.name}: delete ids must be in [0, {self.ntotal}), "
                f"got range [{ids[0]}, {ids[-1]}]"
            )
        already = ids[self._tombstones.contains(ids)]
        if already.size:
            raise ValueError(
                f"{self.name}: ids already deleted: {already[:8].tolist()}"
                + ("..." if already.size > 8 else "")
            )
        self._tombstones.mark(ids)
        self._index_epoch += 1
        self.metrics.counter(
            "index_points_deleted", "Points tombstoned across all indexes"
        ).inc(ids.size)
        self._on_delete(ids)
        return ids

    def _on_delete(self, ids: np.ndarray) -> None:
        """Subclass hook fired after ids were tombstoned (push the dead
        set into auxiliary structures, forward to shards, ...)."""

    def compact(self) -> CompactionResult:
        """Physically drop tombstoned rows and re-fit over the survivors.

        Re-fits **in place** over exactly the live rows — reclaiming
        storage, re-deriving every n-dependent parameter, renumbering ids
        densely and clearing the tombstone set.  Old global ids translate
        through the returned result's ``id_map``.  For a non-blocking
        rebuild into a fresh object (the serving path), use
        :func:`repro.lifecycle.compact_index` instead.
        """
        self._require_built()
        live = self.live_ids()
        if live.size == 0:
            raise ValueError(f"{self.name}: cannot compact with zero live points")
        before = self.ntotal
        removed = self.num_tombstones
        self.fit(self.data[live])
        self.metrics.counter(
            "index_compactions", "In-place compactions across all indexes"
        ).inc()
        self.metrics.counter(
            "index_rows_reclaimed", "Dead rows physically dropped by compaction"
        ).inc(removed)
        return CompactionResult(
            id_map=dense_id_map(live, before),
            removed=removed,
            before_ntotal=before,
            after_ntotal=self.ntotal,
            epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    # shared-memory snapshots
    # ------------------------------------------------------------------

    def to_shm(self) -> Tuple[Dict[str, np.ndarray], Dict]:
        """Export the index as ``(arrays, state)`` for shared-memory serving.

        The counterpart of ``save()``'s ``to_arrays`` machinery for the
        process-pool engine (:mod:`repro.parallel`): *arrays* is a flat
        ``{key: ndarray}`` mapping holding everything bulky (published
        once into a named segment), *state* a small picklable dict with
        the rest (parameters, epoch, fit cardinality).  :meth:`from_shm`
        must rebuild an equivalent read-only index from zero-copy views
        over those arrays — no dataset copy, no structure rebuild.

        Backends without an implementation cannot serve behind
        ``ShardedIndex(..., backend="process")``; PM-LSH and the exact
        oracle implement it, everything else keeps the thread fan-out.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the shared-memory "
            "snapshot protocol (to_shm/from_shm), so it cannot serve behind "
            "the process-pool engine — use the thread fan-out "
            '(pool_backend="thread") or a backend that does (pm-lsh, exact)'
        )

    @classmethod
    def from_shm(cls, arrays: Dict[str, np.ndarray], state: Dict) -> "ANNIndex":
        """Rebuild a read-only replica from :meth:`to_shm` output.

        *arrays* values are typically read-only shared-memory views; the
        restored index must treat them as immutable (serving replicas
        never ``fit``/``add`` — writes happen in the parent, which then
        re-publishes the snapshot under a bumped epoch).
        """
        raise NotImplementedError(
            f"{cls.__name__} does not implement the shared-memory snapshot "
            "protocol (to_shm/from_shm)"
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Approximate k nearest neighbours of the single vector *q*."""

    def run(self, queries: np.ndarray, spec: QuerySpec | int):
        """Answer every row of *queries* under *spec* (the polymorphic entry).

        Accepts a ``(Q, d)`` matrix (or one ``(d,)`` vector, treated as
        Q = 1).  A :class:`~repro.queries.Knn` spec (or a bare int k)
        returns a :class:`BatchResult`; a :class:`~repro.queries.Range`
        spec returns a ragged :class:`~repro.queries.RangeResult`.  Specs
        may carry per-call runtime knobs — indexes that cannot honour a
        knob answer the plain query and set ``overrides_ignored`` in the
        result stats.
        """
        spec = as_query_spec(spec)
        self._require_built()
        if isinstance(spec, Knn):
            queries = self._validate_queries(queries, spec.k)
            dead = self.num_tombstones
            if dead and not self._knn_filters_tombstones:
                # Generic tombstone path: over-fetch so that even if every
                # dead id that can reach the result window lands in it there
                # are still k live ids behind it, then strip and re-cut.
                # Exactness of the final k is inherited from the backend's
                # own ordering.  ``_tombstone_overfetch`` bounds how many
                # dead ids can actually surface (never more than the full
                # tombstone count).
                bound = min(dead, max(0, int(self._tombstone_overfetch(spec.k))))
                wide = replace(spec, k=min(self.ntotal, spec.k + bound))
                self.metrics.counter(
                    "overfetch_queries",
                    "Queries widened by the generic tombstone overfetch path",
                ).inc(queries.shape[0])
                self.metrics.counter(
                    "overfetch_extra_k",
                    "Extra result slots fetched to cover tombstones",
                ).inc(queries.shape[0] * (wide.k - spec.k))
                result = self._strip_dead(self._run_knn(queries, wide), spec.k)
            else:
                result = self._run_knn(queries, spec)
            if dead:
                result.stats["tombstones"] = float(dead)
                result.stats["nlive"] = float(self.nlive)
            if spec.has_overrides and not self._honours_knn_overrides:
                result.stats["overrides_ignored"] = 1.0
            return result
        if isinstance(spec, Range):
            queries = self._validate_range_queries(queries)
            result = self._run_range(queries, spec)
            if spec.has_overrides and not self._honours_range_overrides:
                result.stats["overrides_ignored"] = 1.0
            return result
        raise TypeError(f"{self.name}: unsupported query spec {spec!r}")

    def search(self, queries: np.ndarray, k: int) -> BatchResult:
        """Approximate k nearest neighbours of every row of *queries*.

        Sugar for ``run(queries, Knn(k))``; results are identical to
        calling :meth:`query` per row.
        """
        return self.run(queries, Knn(k=int(k)))

    def range_search(
        self,
        queries: np.ndarray,
        r: float,
        *,
        c: float | None = None,
        budget: int | None = None,
    ) -> RangeResult:
        """All points within distance *r* of every query row (ragged).

        Sugar for ``run(queries, Range(r, c=c, budget=budget))``.  The
        exact fallback returns precisely B(q, r); native LSH paths answer
        with the (r, c)-ball guarantee — high recall on B(q, r), admitted
        points bounded by B(q, c·r).
        """
        return self.run(queries, Range(r=r, c=c, budget=budget))

    def closest_pairs(self, m: int = 1, *, budget: int | None = None) -> ClosestPairResult:
        """The m closest pairs of indexed points, sorted by ``(distance, i, j)``.

        The base implementation is an exact blocked self-join over the
        dataset; sublinear native paths (PM-LSH's projected-space
        self-join) override :meth:`_closest_pairs`.  ``budget`` caps the
        number of candidate pairs a native path may verify.
        """
        self._require_built()
        m = int(m)
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if self.nlive < 2:
            raise ValueError(
                f"{self.name}: need at least 2 live indexed points, have {self.nlive}"
            )
        max_pairs = self.nlive * (self.nlive - 1) // 2
        return self._closest_pairs(min(m, max_pairs), budget=budget)

    def _tombstone_overfetch(self, k: int) -> int:
        """Upper bound on tombstoned ids that can appear in one query's
        result window (the generic tombstone path widens ``k`` by this).

        The default — the full tombstone count — is always safe but
        overfetches wildly when deletes are spread over many buckets a
        single query never probes together.  Bucketed backends override
        it with a structural bound (e.g. E2LSH: the sum over tables of
        the worst per-bucket dead count), shrinking the widened window
        while keeping the stripped-and-recut results byte-identical.
        """
        return self.num_tombstones

    def _strip_dead(self, batch: BatchResult, k: int) -> BatchResult:
        """Drop tombstoned ids from an over-fetched *batch*, re-cut to *k*.

        Vectorised row compaction: surviving entries slide left within
        their row (backend order preserved), rows re-pad with ``-1``/inf.
        """
        ids, dists = batch.ids, batch.distances
        num_queries = ids.shape[0]
        alive = (ids >= 0) & ~self._tombstones.contains(ids)
        counts = alive.sum(axis=1)
        rows = np.repeat(np.arange(num_queries), counts)
        pos = np.arange(rows.size) - np.repeat(np.cumsum(counts) - counts, counts)
        keep = pos < k
        out_ids = np.full((num_queries, k), -1, dtype=np.int64)
        out_dists = np.full((num_queries, k), np.inf, dtype=np.float64)
        out_ids[rows[keep], pos[keep]] = ids[alive][keep]
        out_dists[rows[keep], pos[keep]] = dists[alive][keep]
        return BatchResult(
            ids=out_ids,
            distances=out_dists,
            stats=dict(batch.stats),
            per_query_stats=batch.per_query_stats,
        )

    # -- subclass hooks -------------------------------------------------

    def _run_knn(self, queries: np.ndarray, spec: Knn) -> BatchResult:
        """Default kNN batch path: a per-row :meth:`query` loop."""
        return BatchResult.from_queries(
            [self.query(row, spec.k) for row in queries], k=spec.k
        )

    def _run_range(self, queries: np.ndarray, spec: Range) -> RangeResult:
        """Exact fallback: blocked brute-force scan of the whole dataset.

        Ignores the spec's ``c``/``budget`` knobs — an exact answer
        trivially satisfies any (r, c) contract.  Matches are sorted by
        ``(distance, id)`` per query.  Distances come from the row-wise
        kernel, whose floats are independent of how the dataset is
        partitioned — the property behind sharded/single byte-equality.
        Tombstoned rows are masked *after* the distance computation, so
        the surviving floats are bit-identical to a tombstone-free index.
        """
        from repro.datasets.distance import pairwise_distances_rowwise

        block_rows = self._fallback_block_rows()
        alive = (
            self._tombstones.alive_mask(self.ntotal) if self._tombstones else None
        )
        lims = [0]
        id_chunks: List[np.ndarray] = []
        dist_chunks: List[np.ndarray] = []
        per_query: List[Dict[str, float]] = []
        for start in range(0, queries.shape[0], block_rows):
            block = queries[start : start + block_rows]
            dists = pairwise_distances_rowwise(block, self.data)
            for row in range(block.shape[0]):
                within = dists[row] <= spec.r
                if alive is not None:
                    within &= alive
                inside = np.flatnonzero(within)
                row_dists = dists[row][inside]
                order = np.lexsort((inside, row_dists))
                id_chunks.append(inside[order].astype(np.int64))
                dist_chunks.append(row_dists[order])
                lims.append(lims[-1] + inside.size)
                per_query.append(
                    {"candidates": float(self.nlive), "returned": float(inside.size)}
                )
        return RangeResult(
            lims=np.asarray(lims, dtype=np.int64),
            ids=np.concatenate(id_chunks) if id_chunks else np.empty(0, dtype=np.int64),
            distances=(
                np.concatenate(dist_chunks)
                if dist_chunks
                else np.empty(0, dtype=np.float64)
            ),
            stats=aggregate_stats(tuple(per_query)),
            per_query_stats=tuple(per_query),
        )

    def _closest_pairs(self, m: int, budget: int | None = None) -> ClosestPairResult:
        """Exact fallback: blocked brute-force self-join (upper triangle).

        ``budget`` is ignored — every pair is examined.  Keeps a running
        top-m across blocks so memory stays bounded; the row-wise distance
        kernel keeps the floats partition-independent.  With tombstones,
        the join runs over the gathered live submatrix and the dense pair
        ids map back through the (monotonic) live-id array — so the result
        is byte-identical to an index fitted on the live rows alone.
        """
        from repro.datasets.distance import pairwise_distances_rowwise

        live = self.live_ids() if self._tombstones else None
        data = self.data if live is None else self.data[live]
        n = data.shape[0]
        block_rows = self._fallback_block_rows()
        best_pairs = np.empty((0, 2), dtype=np.int64)
        best_dists = np.empty(0, dtype=np.float64)
        for start in range(0, n, block_rows):
            stop = min(start + block_rows, n)
            dists = pairwise_distances_rowwise(data[start:stop], data)
            rows, cols = np.nonzero(
                np.arange(n)[None, :] > np.arange(start, stop)[:, None]
            )
            flat = dists[rows, cols]
            # Per-block pre-cut: only pairs at or below the block's m-th
            # smallest distance can affect the running top-m.  Keeping ALL
            # ties at that value (not an arbitrary argpartition subset)
            # preserves the deterministic (distance, i, j) boundary cut.
            if flat.size > m:
                kth = np.partition(flat, m - 1)[m - 1]
                keep = flat <= kth
                rows, cols, flat = rows[keep], cols[keep], flat[keep]
            block_pairs = np.column_stack([rows + start, cols]).astype(np.int64)
            best_pairs = np.concatenate([best_pairs, block_pairs])
            best_dists = np.concatenate([best_dists, flat])
            best_pairs, best_dists = sort_pairs(best_pairs, best_dists, m)
        if live is not None and best_pairs.size:
            best_pairs = live[best_pairs]
        pair_count = n * (n - 1) // 2
        return ClosestPairResult(
            pairs=best_pairs,
            distances=best_dists,
            stats={"candidate_pairs": float(pair_count), "verified": float(pair_count)},
        )

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"{self.name}: call fit(data) before querying")

    def _validate_query(self, q: np.ndarray, k: int) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.d,):
            raise ValueError(f"query must have shape ({self.d},), got {q.shape}")
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}], got {k}")
        return q

    def _validate_queries(self, queries: np.ndarray, k: int) -> np.ndarray:
        queries = self._validate_range_queries(queries)
        if not 1 <= k <= self.nlive:
            detail = (
                f" ({self.num_tombstones} of {self.ntotal} points deleted)"
                if self._tombstones
                else ""
            )
            raise ValueError(f"k must be in [1, {self.nlive}]{detail}, got {k}")
        return queries

    def _validate_range_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != self.d:
            raise ValueError(
                f"queries must have shape (Q, {self.d}), got {queries.shape}"
            )
        if queries.shape[0] == 0:
            raise ValueError("queries must contain at least one row")
        return queries
