"""The common interface every ANN algorithm in this library implements.

Lifecycle (faiss/sklearn-style)
-------------------------------
An index is constructed from *parameters only*, then bound to data:

>>> index = SomeIndex(seed=0)          # no data yet
>>> index.fit(data)                    # build over an (n, d) matrix
>>> batch = index.search(queries, k)   # (Q, d) -> BatchResult
>>> index.add(new_points)              # dynamic growth

``query(q, k)`` remains the single-query primitive; ``search`` is the
first-class batch entry point (implementations may vectorise it).

Legacy shim
-----------
The original API — ``SomeIndex(data, ...).build()`` followed by
``query()`` — keeps working during the transition but emits a
``DeprecationWarning`` (message prefix ``"legacy ANNIndex API"``).
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one (c, k)-ANN query.

    ``ids`` and ``distances`` are parallel arrays sorted by ascending
    distance (original space).  ``stats`` carries per-query diagnostics —
    candidates verified, range-query rounds, distance computations — used by
    the harness and the ablation benches.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 1:
            raise ValueError(
                f"ids and distances must be matching 1-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    def __len__(self) -> int:
        return int(self.ids.size)

    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, float]], stats: Dict[str, float] | None = None
    ) -> "QueryResult":
        """Build from ``(id, distance)`` pairs, sorting by distance."""
        pairs = sorted(pairs, key=lambda pair: pair[1])
        ids = np.asarray([p[0] for p in pairs], dtype=np.int64)
        distances = np.asarray([p[1] for p in pairs], dtype=np.float64)
        return cls(ids=ids, distances=distances, stats=stats or {})


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched ``search(queries, k)`` call.

    ``ids`` and ``distances`` are ``(Q, k)`` matrices, row i answering
    query i.  Rows where an algorithm returned fewer than k neighbours are
    right-padded with id ``-1`` and distance ``inf`` (so the matrices stay
    rectangular); ``self[i]`` strips the padding again.

    ``stats`` aggregates the per-query diagnostic dictionaries: every key
    appearing in any query's stats is averaged over the queries that
    reported it, and ``"queries"`` records Q.  The raw dictionaries remain
    available in ``per_query_stats``.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)
    per_query_stats: Tuple[Dict[str, float], ...] = ()

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 2:
            raise ValueError(
                f"ids and distances must be matching 2-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    @property
    def num_queries(self) -> int:
        return int(self.ids.shape[0])

    @property
    def k(self) -> int:
        return int(self.ids.shape[1])

    def __len__(self) -> int:
        return self.num_queries

    def __getitem__(self, index: int) -> QueryResult:
        """The i-th query's result, with padding stripped."""
        row_ids = self.ids[index]  # raises IndexError for out-of-range index
        valid = row_ids >= 0
        position = index if index >= 0 else self.num_queries + index
        stats = (
            dict(self.per_query_stats[position])
            if position < len(self.per_query_stats)
            else {}
        )
        return QueryResult(
            ids=row_ids[valid], distances=self.distances[index][valid], stats=stats
        )

    @classmethod
    def from_queries(cls, results: List[QueryResult], k: int) -> "BatchResult":
        """Stack per-query results into one padded batch."""
        num_queries = len(results)
        ids = np.full((num_queries, k), -1, dtype=np.int64)
        distances = np.full((num_queries, k), np.inf, dtype=np.float64)
        for i, result in enumerate(results):
            count = min(len(result), k)
            ids[i, :count] = result.ids[:count]
            distances[i, :count] = result.distances[:count]
        per_query = tuple(dict(result.stats) for result in results)
        return cls(
            ids=ids,
            distances=distances,
            stats=aggregate_stats(per_query),
            per_query_stats=per_query,
        )


def aggregate_stats(per_query: Tuple[Dict[str, float], ...]) -> Dict[str, float]:
    """Mean of every per-query stat key, plus the query count."""
    aggregated: Dict[str, float] = {"queries": float(len(per_query))}
    keys = {key for stats in per_query for key in stats}
    for key in sorted(keys):
        values = [stats[key] for stats in per_query if key in stats]
        if values:
            aggregated[key] = float(np.mean(values))
    return aggregated


class ANNIndex(abc.ABC):
    """Abstract (c, k)-ANN index with a fit/add/search lifecycle.

    Implementations are constructed from parameters only and bound to a
    dataset by :meth:`fit`; :meth:`search` answers a whole query matrix,
    :meth:`query` a single vector, both by *original-space* distance.
    :meth:`add` grows the indexed set dynamically.

    Subclasses implement :meth:`_fit` (build the structures over
    ``self.data``) and :meth:`query`; they may override :meth:`_search`
    with a vectorised batch path and :meth:`_add` with an incremental
    update path (the default re-fits over the concatenated dataset).
    """

    #: Human-readable algorithm name (used in result tables).
    name: str = "ANNIndex"

    def __init__(self, data: np.ndarray | None = None) -> None:
        self.data: Optional[np.ndarray] = None
        self._built = False
        if data is not None:
            warnings.warn(
                f"legacy ANNIndex API: passing data to {type(self).__name__}(...) is "
                "deprecated; construct from parameters and call fit(data)",
                DeprecationWarning,
                stacklevel=3,
            )
            self._set_data(data)

    # ------------------------------------------------------------------
    # data binding
    # ------------------------------------------------------------------

    @staticmethod
    def _check_data(data: np.ndarray) -> np.ndarray:
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"data must be a non-empty 2-D array, got shape {data.shape}")
        return data

    def _set_data(self, data: np.ndarray) -> None:
        self.data = self._check_data(data)

    @property
    def n(self) -> int:
        if self.data is None:
            raise RuntimeError(f"{self.name}: no dataset bound; call fit(data) first")
        return self.data.shape[0]

    @property
    def d(self) -> int:
        if self.data is None:
            raise RuntimeError(f"{self.name}: no dataset bound; call fit(data) first")
        return self.data.shape[1]

    @property
    def ntotal(self) -> int:
        """Number of indexed vectors (faiss-style); 0 before ``fit``."""
        return 0 if self.data is None else int(self.data.shape[0])

    @property
    def is_built(self) -> bool:
        return self._built

    def __repr__(self) -> str:
        if self.data is None:
            return f"{type(self).__name__}(unfitted)"
        state = "built" if self._built else "unbuilt"
        return f"{type(self).__name__}(d={self.d}, ntotal={self.ntotal}, {state})"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "ANNIndex":
        """Bind *data* and build the index; returns self for chaining.

        Calling ``fit`` again re-builds over the new dataset.
        """
        self._set_data(data)
        self._built = False
        self._fit()
        self._built = True
        return self

    def _fit(self) -> None:
        """Build the index structures over ``self.data`` (subclass hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _fit() nor a legacy build()"
        )

    def build(self) -> "ANNIndex":
        """Deprecated: build over the dataset staged at construction.

        Retained so ``SomeIndex(data).build()`` keeps working; new code
        should call :meth:`fit`.
        """
        warnings.warn(
            "legacy ANNIndex API: build() is deprecated; use fit(data)",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.data is None:
            raise RuntimeError(
                f"{self.name}: no dataset staged at construction; call fit(data)"
            )
        self._built = False
        self._fit()
        self._built = True
        return self

    def add(self, points: np.ndarray) -> np.ndarray:
        """Add *points* to a fitted index; returns the ids assigned to them.

        The default implementation re-fits over the concatenated dataset —
        always correct, and it re-derives every n-dependent quantity
        (candidate budgets, hash counts) for the grown cardinality.
        Algorithms with a cheaper incremental path override :meth:`_add`.
        """
        self._require_built()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.d:
            raise ValueError(
                f"new points must have dimension {self.d}, got shape {points.shape}"
            )
        if points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return self._add(points)

    def _add(self, points: np.ndarray) -> np.ndarray:
        start = self.n
        self._set_data(np.vstack([self.data, points]))
        self._fit()
        return np.arange(start, self.n, dtype=np.int64)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def query(self, q: np.ndarray, k: int) -> QueryResult:
        """Approximate k nearest neighbours of the single vector *q*."""

    def search(self, queries: np.ndarray, k: int) -> BatchResult:
        """Approximate k nearest neighbours of every row of *queries*.

        Accepts a ``(Q, d)`` matrix (or one ``(d,)`` vector, treated as
        Q = 1) and returns a :class:`BatchResult`.  Row order matches the
        input; results are identical to calling :meth:`query` per row.
        """
        self._require_built()
        queries = self._validate_queries(queries, k)
        return self._search(queries, k)

    def _search(self, queries: np.ndarray, k: int) -> BatchResult:
        return BatchResult.from_queries([self.query(row, k) for row in queries], k=k)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"{self.name}: call fit(data) before querying")

    def _validate_query(self, q: np.ndarray, k: int) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        if q.shape != (self.d,):
            raise ValueError(f"query must have shape ({self.d},), got {q.shape}")
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}], got {k}")
        return q

    def _validate_queries(self, queries: np.ndarray, k: int) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != self.d:
            raise ValueError(
                f"queries must have shape (Q, {self.d}), got {queries.shape}"
            )
        if queries.shape[0] == 0:
            raise ValueError("queries must contain at least one row")
        if not 1 <= k <= self.n:
            raise ValueError(f"k must be in [1, {self.n}], got {k}")
        return queries
