"""Seeded random-number plumbing.

Every stochastic component in the library (hash function sampling, pivot
selection, dataset generation, query sampling) accepts a ``seed`` argument
that may be an ``int``, a ``numpy.random.Generator``, or ``None``.  This
module centralises the conversion so behaviour is reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything accepted where a source of randomness is required.
RandomState = Union[int, np.random.Generator, None]

#: Default seed used when a component is asked to be deterministic but the
#: caller did not supply a seed.  Chosen arbitrarily; fixed forever.
DEFAULT_SEED = 0x5EED


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded from OS entropy.  An ``int`` yields a
    fresh deterministic generator.  An existing generator is returned as-is
    (shared state, *not* copied), which lets callers thread one stream
    through several components.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive *count* independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh entropy from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: RandomState, salt: int) -> Optional[int]:
    """Mix *salt* into *seed* to produce a distinct deterministic child seed.

    Returns ``None`` when *seed* is ``None`` (keep full entropy).  Useful when
    a component must hand different seeds to sub-components but only received
    one integer.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return int(np.random.SeedSequence([int(seed), int(salt)]).generate_state(1)[0])
