"""Heap helpers: a bounded max-heap for top-k tracking and a tiny min-heap.

The bounded max-heap keeps the *k smallest* items seen so far, which is the
access pattern of every kNN routine in this library: push candidate
(distance, id) pairs, pop nothing, read the sorted survivors at the end.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Iterator, List, Tuple

Item = Tuple[float, Any]


class BoundedMaxHeap:
    """Keep the ``k`` smallest ``(key, value)`` pairs pushed into it.

    Internally a max-heap of size ≤ k implemented by negating keys on a
    ``heapq`` min-heap.  ``bound`` is the current k-th smallest key (or
    ``inf`` until the heap is full), which callers use to prune work.

    With ``canonical_values=True`` (values must be negatable numbers,
    e.g. int point ids) ties at the k-th key are resolved by *smallest
    value* instead of arrival order: the retained set is the k smallest
    ``(key, value)`` pairs lexicographically — the same canonical cut the
    flat PM-tree traversal and the exact brute-force oracle use, which is
    what makes capped fetches identical across backends even on exact
    distance ties.
    """

    __slots__ = ("k", "_heap", "_counter", "_canonical")

    def __init__(self, k: int, canonical_values: bool = False) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: List[Tuple[float, Any, Any]] = []
        # The middle tuple element breaks heap-comparison ties: a monotone
        # counter by default (values never get compared; they may be
        # un-orderable), or the negated value in canonical mode (so the
        # root is the largest (key, value) pair).
        self._counter = 0
        self._canonical = canonical_values

    def push(self, key: float, value: Any) -> bool:
        """Offer an item; returns True if it was retained."""
        if self._canonical:
            entry = (-key, -value, value)
        else:
            self._counter += 1
            entry = (-key, self._counter, value)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        root = self._heap[0]
        if self._canonical:
            retain = entry > root  # (key, value) smaller than the current worst
        else:
            retain = -root[0] > key  # strictly smaller key; ties keep the incumbent
        if retain:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, items: Iterable[Item]) -> None:
        for key, value in items:
            self.push(key, value)

    @property
    def bound(self) -> float:
        """Current admission threshold: the largest retained key, or +inf."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def items_sorted(self) -> List[Item]:
        """Retained items as ``(key, value)`` sorted by ascending key."""
        return [(-negkey, value) for negkey, _, value in sorted(self._heap, reverse=True)]


class MinHeap:
    """A thin typed wrapper over ``heapq`` used for best-first traversals."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = 0

    def push(self, key: float, value: Any) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (key, self._counter, value))

    def pop(self) -> Item:
        key, _, value = heapq.heappop(self._heap)
        return key, value

    def peek_key(self) -> float:
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Item]:
        """Drain the heap in key order (consumes it)."""
        while self._heap:
            yield self.pop()
