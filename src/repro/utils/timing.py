"""Lightweight timing helpers used by the evaluation harness."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Timer:
    """Context manager measuring wall-clock time in milliseconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed_ms: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ms = (time.perf_counter() - self._start) * 1e3


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, elapsed_ms)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return result, elapsed_ms
