"""Z-order (Morton) encoding of integer grid coordinates.

The LSB-tree (Tao et al., SIGMOD'09 — one of the radius-enlarging methods
of §3.1) assigns each point's m bucketed hash values a Z-order value and
stores the values in a B-tree; points adjacent in Z-order tend to share
hash buckets, so a cursor walk around the query's Z-value visits likely
collisions first.  This module provides the bit-interleaving.

Python integers are arbitrary precision, so the encoding is exact for any
number of dimensions and bit width (no 64-bit overflow concerns).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def interleave_bits(coords: Sequence[int], bits: int) -> int:
    """Interleave *bits* bits of each non-negative coordinate, MSB first.

    Bit ``b`` (from the most significant) of every dimension is placed
    before bit ``b + 1`` of any dimension, i.e. the classic Morton layout:
    ``z = x_{B-1} y_{B-1} z_{B-1} ... x_0 y_0 z_0`` for 3-D input.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    value = 0
    for bit in range(bits - 1, -1, -1):
        for coordinate in coords:
            if coordinate < 0:
                raise ValueError("coordinates must be non-negative; offset them first")
            value = (value << 1) | ((int(coordinate) >> bit) & 1)
    return value


def zorder_values(grid: np.ndarray, bits: int | None = None) -> list[int]:
    """Z-order value for every row of an integer grid matrix.

    Rows may contain negative coordinates; the matrix is shifted to
    non-negative per dimension first (a rigid translation, which preserves
    Z-order locality).  ``bits`` defaults to the smallest width that fits
    the largest shifted coordinate.
    """
    grid = np.asarray(grid)
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    if not np.issubdtype(grid.dtype, np.integer):
        raise ValueError(f"grid must be integer-typed, got {grid.dtype}")
    shifted = grid - grid.min(axis=0, keepdims=True)
    max_coordinate = int(shifted.max()) if shifted.size else 0
    needed = max(1, int(max_coordinate).bit_length())
    if bits is None:
        bits = needed
    elif bits < needed:
        raise ValueError(f"bits={bits} cannot represent coordinate {max_coordinate}")
    return [interleave_bits(row, bits) for row in shifted.tolist()]
