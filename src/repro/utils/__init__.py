"""Shared utilities: seeded RNG helpers, timing, bounded heaps, chunking."""

from repro.utils.heap import BoundedMaxHeap, MinHeap
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.timing import Timer, time_call

__all__ = [
    "BoundedMaxHeap",
    "MinHeap",
    "RandomState",
    "Timer",
    "as_generator",
    "spawn_generators",
    "time_call",
]
