"""Unified persistence entry point.

Indexes that implement ``save(path)`` record their registry name inside
the ``.npz`` archive (key ``registry_name``); :func:`load_index` reads
that name back, resolves the implementation class through the registry,
and dispatches to its ``load`` classmethod — so callers restore any
saved index without knowing which class wrote it:

>>> import repro
>>> repro.create_index("pm-lsh", seed=0).fit(data).save("index.npz")  # doctest: +SKIP
>>> index = repro.load_index("index.npz")                             # doctest: +SKIP
"""

from __future__ import annotations

import numpy as np

from repro.registry import get_index_class


def saved_registry_name(path: str) -> str:
    """The registry name stored in a saved index archive at *path*."""
    with np.load(path) as archive:
        if "registry_name" not in archive:
            raise ValueError(
                f"{path!r} has no 'registry_name' entry — it was not written by "
                "an ANNIndex.save() that supports load_index() dispatch "
                "(archives saved before v2.0 must be loaded through their "
                "class's load() directly)"
            )
        return str(archive["registry_name"])


def load_index(path: str):
    """Restore a saved index, dispatching on the registry name it recorded.

    Reads the ``registry_name`` stored by ``save()``, resolves the class
    through :func:`repro.registry.get_index_class`, and returns
    ``cls.load(path)``.  Raises ``ValueError`` for archives without a
    recorded name and ``TypeError`` when the resolved class has no
    ``load`` classmethod.
    """
    name = saved_registry_name(path)
    cls = get_index_class(name)
    loader = getattr(cls, "load", None)
    if loader is None:
        raise TypeError(
            f"index class {cls.__name__} (registry name {name!r}) does not "
            "implement load()"
        )
    return loader(path)
