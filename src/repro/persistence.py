"""Unified persistence entry point.

Indexes that implement ``save(path)`` record their registry name inside
the ``.npz`` archive (key ``registry_name``); :func:`load_index` reads
that name back, resolves the implementation class through the registry,
and dispatches to its ``load`` classmethod — so callers restore any
saved index without knowing which class wrote it:

>>> import repro
>>> repro.create_index("pm-lsh", seed=0).fit(data).save("index.npz")  # doctest: +SKIP
>>> index = repro.load_index("index.npz")                             # doctest: +SKIP

Snapshot format versioning
--------------------------
Archives carry a ``format_version`` stamp (:data:`FORMAT_VERSION`).
:func:`load_index` refuses archives written by a *newer* library with a
clear error instead of silently dropping fields it does not understand;
archives from *older* libraries (no stamp at all, or a lower version)
keep loading — missing lifecycle state defaults to "no deletes, epoch 0".

Lifecycle state (:mod:`repro.lifecycle`) rides along in every archive:
the monotonically increasing index epoch, the tombstone set, and the
fit-time cardinality — enough for :class:`~repro.lifecycle.Replica` to
order snapshots and for a restored index to answer exactly like the one
that was saved, deletes included.
"""

from __future__ import annotations

import numpy as np

from repro.registry import get_index_class

#: Version stamp written into every archive.  Bump when the archive
#: layout changes in a way an older loader would silently misread.
#: Version 1 introduced the stamp itself plus the lifecycle state keys
#: (``index_epoch``, ``tombstone_ids``, ``fitted_n``); unstamped
#: archives are version 0 (pre-lifecycle) and stay loadable.
FORMAT_VERSION = 1

#: Archive keys that carry lifecycle state (see :func:`lifecycle_arrays`).
_LIFECYCLE_KEYS = ("format_version", "index_epoch", "tombstone_ids", "fitted_n")


def lifecycle_arrays(index) -> dict:
    """The lifecycle archive entries for *index*: format version, epoch,
    tombstone ids and fit-time cardinality.  Index ``save()``
    implementations splat this into their ``np.savez`` call."""
    return {
        "format_version": np.asarray(FORMAT_VERSION, dtype=np.int64),
        "index_epoch": np.asarray(index.epoch, dtype=np.int64),
        "tombstone_ids": index.tombstones.ids(),
        "fitted_n": np.asarray(index.fitted_n, dtype=np.int64),
    }


def read_lifecycle_state(archive) -> dict:
    """Lifecycle state out of an open archive; legacy defaults when absent."""
    files = set(archive.files)
    return {
        "epoch": int(archive["index_epoch"]) if "index_epoch" in files else 0,
        "tombstone_ids": (
            np.asarray(archive["tombstone_ids"], dtype=np.int64)
            if "tombstone_ids" in files
            else np.empty(0, dtype=np.int64)
        ),
        "fitted_n": int(archive["fitted_n"]) if "fitted_n" in files else None,
    }


def apply_lifecycle_state(index, state: dict) -> None:
    """Install :func:`read_lifecycle_state` output on a restored index.

    Runs after the index is otherwise fully built: it resets the epoch to
    the stored one, re-marks the tombstones, and fires the index's
    ``_on_delete`` hook so structure-level filters (the flat tree's dead
    mask) match the saved index exactly.
    """
    from repro.lifecycle.tombstones import TombstoneSet

    index._index_epoch = int(state["epoch"])
    if state["fitted_n"] is not None:
        index._fitted_n = int(state["fitted_n"])
    dead = state["tombstone_ids"]
    if dead.size:
        index._tombstones = TombstoneSet(dead)
        index._on_delete(dead)


def _archive_format_version(archive) -> int:
    return (
        int(archive["format_version"]) if "format_version" in archive.files else 0
    )


def saved_registry_name(path: str) -> str:
    """The registry name stored in a saved index archive at *path*."""
    with np.load(path) as archive:
        if "registry_name" not in archive:
            raise ValueError(
                f"{path!r} has no 'registry_name' entry — it was not written by "
                "an ANNIndex.save() that supports load_index() dispatch "
                "(archives saved before v2.0 must be loaded through their "
                "class's load() directly)"
            )
        return str(archive["registry_name"])


def snapshot_epoch(path: str) -> int:
    """The index epoch stamped into the archive at *path* (0 for legacy
    pre-lifecycle archives) — the cheap newer-than test behind
    :meth:`repro.lifecycle.Replica.refresh`."""
    with np.load(path) as archive:
        return int(archive["index_epoch"]) if "index_epoch" in archive.files else 0


def load_index(path: str):
    """Restore a saved index, dispatching on the registry name it recorded.

    Reads the ``registry_name`` stored by ``save()``, resolves the class
    through :func:`repro.registry.get_index_class`, and returns
    ``cls.load(path)``.  Raises ``ValueError`` for archives without a
    recorded name, for archives whose ``format_version`` is newer than
    this library's :data:`FORMAT_VERSION` (a newer library wrote them),
    and ``TypeError`` when the resolved class has no ``load``
    classmethod.  Legacy archives without a version stamp load normally.
    """
    with np.load(path) as archive:
        if "registry_name" not in archive:
            raise ValueError(
                f"{path!r} has no 'registry_name' entry — it was not written by "
                "an ANNIndex.save() that supports load_index() dispatch "
                "(archives saved before v2.0 must be loaded through their "
                "class's load() directly)"
            )
        name = str(archive["registry_name"])
        version = _archive_format_version(archive)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path!r} has snapshot format version {version}, newer than this "
            f"library's {FORMAT_VERSION} — it was written by a newer release; "
            "upgrade the library to load it"
        )
    cls = get_index_class(name)
    loader = getattr(cls, "load", None)
    if loader is None:
        raise TypeError(
            f"index class {cls.__name__} (registry name {name!r}) does not "
            "implement load()"
        )
    return loader(path)
