"""Central registry of ANN index implementations.

Every algorithm registers itself under a canonical name (and optional
aliases) with :func:`register_index`; :func:`create_index` is the factory
the harness, benchmarks and examples construct indexes through:

>>> import repro
>>> index = repro.create_index("pm-lsh", seed=42)
>>> index.fit(data).search(queries, k=10)          # doctest: +SKIP

Name lookup is forgiving: case, spaces, dashes and underscores are
ignored, so ``"PM-LSH"``, ``"pm_lsh"`` and ``"pmlsh"`` all resolve to the
same class.  Registering a new algorithm is one decorator line::

    @register_index("my-lsh")
    class MyLSH(ANNIndex):
        ...

after which ``create_index("my-lsh", **params)`` and every factory-driven
driver pick it up with no further wiring.
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, List

#: normalised name -> implementation class (includes aliases).
_REGISTRY: Dict[str, type] = {}
#: canonical registration name -> implementation class (for listings).
_CANONICAL: Dict[str, type] = {}


def _normalize(name: str) -> str:
    if not isinstance(name, str):
        raise TypeError(f"index name must be a string, got {type(name).__name__}")
    normalized = re.sub(r"[\s_\-]+", "", name.strip().lower())
    if not normalized:
        raise ValueError(f"index name must be non-empty, got {name!r}")
    return normalized


def register_index(name: str, *aliases: str):
    """Class decorator registering an :class:`ANNIndex` under *name*.

    The canonical *name* appears in :func:`available_indexes`; *aliases*
    resolve through :func:`create_index` but are not listed.  Registering
    a different class under an already-taken name raises ``ValueError``
    (re-registering the same class is a no-op, so module reloads stay
    harmless).
    """

    keys = {key: _normalize(key) for key in (name, *aliases)}

    def decorator(cls: type) -> type:
        for key, normalized in keys.items():
            existing = _REGISTRY.get(normalized)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"index name {key!r} is already registered to {existing.__name__}"
                )
            _REGISTRY[normalized] = cls
        cls.registry_name = name
        _CANONICAL[name] = cls
        return cls

    return decorator


def _ensure_builtins() -> None:
    """Import the built-in algorithm modules so their decorators run.

    Lazy so that ``repro.registry`` itself stays import-cycle-free: the
    algorithm modules import :func:`register_index` from here at import
    time, while this function only runs on first lookup.
    """
    import repro.baselines  # noqa: F401  (registers the nine baselines)
    import repro.core.pmlsh  # noqa: F401  (registers PM-LSH)
    import repro.engine  # noqa: F401  (registers the sharded serving engine)


def _suggestions(normalized: str, limit: int = 3) -> List[str]:
    """Close registered names (canonical spelling) for a failed lookup."""
    display = {key: cls.registry_name for key, cls in _REGISTRY.items()}
    close = difflib.get_close_matches(normalized, display, n=limit, cutoff=0.6)
    seen: Dict[str, None] = {}
    for key in close:
        seen.setdefault(display[key])
    return list(seen)


def get_index_class(name: str) -> type:
    """Resolve *name* to the registered implementation class."""
    _ensure_builtins()
    normalized = _normalize(name)
    try:
        return _REGISTRY[normalized]
    except KeyError:
        known = ", ".join(sorted(_CANONICAL))
        close = _suggestions(normalized)
        hint = f" Did you mean {', '.join(map(repr, close))}?" if close else ""
        raise KeyError(
            f"unknown index {name!r}.{hint} Registered indexes: {known}"
        ) from None


def create_index(name: str, **params):
    """Construct the index registered under *name* with **params.

    Parameters are passed straight to the implementation's constructor
    (e.g. ``create_index("pm-lsh", params=PMLSHParams(c=2.0), seed=7)``);
    the returned index is unfitted — call ``fit(data)`` next.
    """
    return get_index_class(name)(**params)


def available_indexes() -> List[str]:
    """Canonical names of every registered algorithm, sorted."""
    _ensure_builtins()
    return sorted(_CANONICAL)
