"""Computation-cost estimation for range queries on both trees.

Implements §4.2 of the paper:

* ``Pr[e accessed]`` for a PM-tree routing entry combines the sphere test
  ``F(e.r + r_q)`` with one ring factor per pivot,
  ``F(HR[i].max + r_q) − F(HR[i].min − r_q)`` (Eq. 6); the expected number
  of distance computations is ``Σ N(e_i)·Pr[e_i]`` over all nodes (Eq. 7).
* For the R-tree, the ball is replaced by an isochoric hyper-cube of side
  ``l = (2·π^{m/2} / (m·Γ(m/2)))^{1/m} · r_q`` and each node's access
  probability is the product of per-axis marginal masses
  ``G_i(u_i + l) − G_i(l_i − l)`` (Eq. 9).

The models take the *actual built trees* plus empirical distributions, so
the same code doubles as the Table 2 generator and as a predictive tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.datasets.distance import DistanceDistribution, MarginalDistribution
from repro.pmtree.tree import PMTree
from repro.rtree.tree import RTree


def isochoric_cube_side(m: int, radius: float) -> float:
    """Side length of the hyper-cube with the volume of an m-ball of
    *radius* (the substitution used in Eq. 9).

    V_ball = π^{m/2} / Γ(m/2 + 1) · r^m, so
    l = (π^{m/2} / Γ(m/2 + 1))^{1/m} · r, computed in log space for
    stability at large m.
    """
    if m <= 0:
        raise ValueError(f"dimension m must be positive, got {m}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    log_volume_coeff = (m / 2.0) * np.log(np.pi) - gammaln(m / 2.0 + 1.0)
    return float(np.exp(log_volume_coeff / m) * radius)


def selectivity_radius(distribution: DistanceDistribution, fraction: float = 0.08) -> float:
    """The radius returning about *fraction* of all points (the paper uses
    ~8 %, "since these points usually suffice for a c-ANN result")."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return distribution.quantile(fraction)


def pm_tree_computation_cost(
    tree: PMTree,
    distribution: DistanceDistribution,
    radius: float,
) -> float:
    """Expected distance computations of ``range(q, radius)`` (Eqs. 6–7).

    Each routing entry e contributes ``N(e)·Pr[e]`` where N(e) is the number
    of entries in the node e points to.  The root's entries are always
    examined, so the root contributes its fan-out deterministically.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if tree.root is None:
        return 0.0
    total = float(_node_size(tree.root))  # root is always accessed
    for _, entry in tree.iter_entries():
        probability = float(distribution.cdf(entry.radius + radius))
        for pivot_index in range(tree.num_pivots):
            lo, hi = entry.hr[pivot_index]
            mass = float(distribution.cdf(hi + radius)) - float(
                distribution.cdf(max(0.0, lo - radius))
            )
            probability *= max(0.0, min(1.0, mass))
        total += _node_size(entry.child) * probability
    return total


def r_tree_computation_cost(
    tree: RTree,
    marginals: MarginalDistribution,
    radius: float,
) -> float:
    """Expected distance computations of ``range(q, radius)`` (Eq. 9)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if tree._root is None or tree._root.mbr is None:
        return 0.0
    m = marginals.dims
    half_side = isochoric_cube_side(m, radius)
    total = float(tree._root.entry_count())  # root always accessed
    for depth, node in tree.iter_nodes():
        if depth == 0:
            continue
        probability = 1.0
        for axis in range(m):
            lo = float(node.mbr.lo[axis]) - half_side
            hi = float(node.mbr.hi[axis]) + half_side
            probability *= marginals.interval_mass(axis, lo, hi)
            if probability == 0.0:
                break
        total += node.entry_count() * probability
    return total


def _node_size(node) -> int:
    return len(node.ids) if node.is_leaf else len(node.entries)


@dataclass(frozen=True)
class CostComparison:
    """One Table 2 cell pair plus the derived reduction percentage."""

    dataset: str
    pm_tree_cost: float
    r_tree_cost: float

    @property
    def reduction(self) -> float:
        """Fractional reduction of the PM-tree over the R-tree (positive =
        PM-tree cheaper), as Table 2's bottom row."""
        if self.r_tree_cost <= 0.0:
            return 0.0
        return 1.0 - self.pm_tree_cost / self.r_tree_cost


def compare_trees(
    dataset: str,
    pm_tree: PMTree,
    r_tree: RTree,
    distribution: DistanceDistribution,
    marginals: MarginalDistribution,
    radius: float,
) -> CostComparison:
    """Evaluate both cost models at the same radius (one Table 2 column)."""
    return CostComparison(
        dataset=dataset,
        pm_tree_cost=pm_tree_computation_cost(pm_tree, distribution, radius),
        r_tree_cost=r_tree_computation_cost(r_tree, marginals, radius),
    )
