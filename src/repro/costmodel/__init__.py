"""Node-based cost models for the PM-tree and the R-tree (§4.2, Table 2).

Both models estimate the expected number of distance computations
(computation cost, CC) of a range query from per-node access probabilities:
the PM-tree model uses the global distance distribution F(x) (Eq. 4) over
sphere and ring tests (Eqs. 5–7); the R-tree model substitutes an isochoric
hyper-cube for the query ball and uses per-dimension marginals G_i(x)
(Eqs. 8–9).
"""

from repro.costmodel.model import (
    CostComparison,
    compare_trees,
    isochoric_cube_side,
    pm_tree_computation_cost,
    r_tree_computation_cost,
    selectivity_radius,
)

__all__ = [
    "CostComparison",
    "compare_trees",
    "isochoric_cube_side",
    "pm_tree_computation_cost",
    "r_tree_computation_cost",
    "selectivity_radius",
]
