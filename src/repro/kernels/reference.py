"""NumPy reference implementation of every hot kernel.

This module is the *semantic contract* of :mod:`repro.kernels`: each
function here is the arithmetic previously inlined in the hot paths
(``FlatPMTree`` traversal, candidate verification, budget cuts, hash
projection), lifted out verbatim.  The ``fast`` backend reorganizes
control flow — chunking, staged mask narrowing, vectorized rank cuts —
but must return **byte-identical** arrays for every kernel; the
differential harness in ``tests/kernels/`` enforces that, which is what
makes the compiled layer safe to grow.

Conventions shared by both backends:

- ``radius`` arguments accept a scalar or a per-pair ``(P,)`` vector
  (the fast path's budget-aware admission tightens the radius per pair).
- Distance kernels reduce each row independently with the same
  ``subtract`` + ``einsum("ij,ij->i")`` + ``sqrt`` pattern, so any
  regrouping of rows (chunking, gathering) cannot change a single bit.
- Candidate cuts are canonical by ``(distance, id)`` — the same tie
  order as the exact brute-force oracle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: ``True`` on backends whose traversal may apply the budget-aware
#: admission pass (tightening the search radius to the running k-th
#: candidate distance).  The reference backend computes the full ball.
SUPPORTS_ADMISSION = False


def _radius_rows(radius, index: np.ndarray):
    """Gather a per-pair radius for *index*, passing scalars through."""
    if isinstance(radius, np.ndarray):
        return radius[index]
    return radius


def closest_mask(dists: np.ndarray, ids: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the k entries smallest by ``(distance, id)``.

    Selection (argpartition) plus an id-ordered resolution of the ties at
    the k-th distance — the same canonical boundary cut as the exact
    brute-force oracle, without sorting the whole slice.
    """
    mask = np.zeros(dists.size, dtype=bool)
    if k <= 0:
        return mask
    if k >= dists.size:
        mask[:] = True
        return mask
    kth = float(np.max(dists[np.argpartition(dists, k - 1)[:k]]))
    below = dists < kth
    mask[below] = True
    missing = k - int(below.sum())
    if missing > 0:
        tied = np.flatnonzero(dists == kth)
        mask[tied[np.argsort(ids[tied], kind="stable")[:missing]]] = True
    return mask


def leaf_prune(
    *,
    member: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    leaf_pd: np.ndarray,
    ring_cols: List[np.ndarray],
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
) -> np.ndarray:
    """Eq. 5 leaf-member filters: parent-distance test, then ring tests.

    One row per live (query, leaf-member) pair; returns the keep mask.
    The parent-distance filter (``|d(q, par) − o.PD| ≤ r``) runs first —
    two scalar gathers — so the ring gathers only touch its survivors;
    the ring filter (``∀i |d(q, p_i) − d(o, p_i)| ≤ r``) narrows the
    survivor set one pivot at a time.
    """
    keep = np.ones(member.size, dtype=bool)
    if use_parent_filter and rep_pd is not None:
        known = ~np.isnan(rep_pd)
        r_known = radius[known] if isinstance(radius, np.ndarray) else radius
        keep[known] &= np.abs(leaf_pd[member[known]] - rep_pd[known]) <= r_known
    if query_rings is not None:
        sub = np.flatnonzero(keep)
        for pivot in range(len(ring_cols)):
            if sub.size == 0:
                break
            ring_ok = (
                np.abs(
                    ring_cols[pivot][member[sub]] - query_rings[rep_q[sub], pivot]
                )
                <= _radius_rows(radius, sub)
            )
            keep[sub[~ring_ok]] = False
            sub = sub[ring_ok]
    return keep


def inner_prune(
    *,
    eidx: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    entry_pd: np.ndarray,
    entry_radius: np.ndarray,
    hr_min: np.ndarray,
    hr_max: np.ndarray,
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
) -> np.ndarray:
    """Eq. 5 routing-entry filters: parent-distance test, then hyper-ring
    interval tests, over one row per (query, routing-entry) pair.

    Survivors still owe a centre-distance computation and the sphere
    test, which the caller performs (it charges ``dist_comps``).
    """
    keep = np.ones(eidx.size, dtype=bool)
    if use_parent_filter and rep_pd is not None:
        known = ~np.isnan(rep_pd)
        r_known = radius[known] if isinstance(radius, np.ndarray) else radius
        keep[known] &= (
            np.abs(entry_pd[eidx[known]] - rep_pd[known])
            <= r_known + entry_radius[eidx[known]]
        )
    if query_rings is not None:
        rings_q = query_rings[rep_q]
        r_col = radius[:, None] if isinstance(radius, np.ndarray) else radius
        ring_ok = (hr_min[eidx] <= rings_q + r_col) & (
            hr_max[eidx] >= rings_q - r_col
        )
        keep &= ring_ok.all(axis=1)
    return keep


def pair_distances(rows: np.ndarray, query_rows: np.ndarray) -> np.ndarray:
    """Euclidean distance per (point-row, query-row) pair.

    *rows* is consumed (clobbered in place) — callers pass a fresh gather.
    Each row reduces independently, so chunked evaluation is bit-identical.
    """
    np.subtract(rows, query_rows, out=rows)
    return np.sqrt(np.einsum("ij,ij->i", rows, rows))


def verify_distances(
    data: np.ndarray,
    ids: np.ndarray,
    queries: np.ndarray,
    rep_q: np.ndarray,
) -> np.ndarray:
    """Gathered candidate verification: ``‖data[ids[i]] − queries[rep_q[i]]‖``.

    The row-wise reduction matches
    :func:`repro.datasets.distance.point_to_points_distances` bit for bit,
    so batched verification equals the per-query loops it replaces.
    """
    diff = data[ids] - queries[rep_q]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def budget_cut(
    q: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    counts: np.ndarray,
    lims: np.ndarray,
    limits: np.ndarray,
) -> Optional[np.ndarray]:
    """Per-query candidate-limit cut over a pooled, query-grouped batch.

    Keeps each over-budget query's ``limits[q]`` closest matches by the
    canonical ``(distance, id)`` order (Algorithm 2's ``⌈βn⌉+k`` cap).
    Returns a keep mask over the pool, or ``None`` when no query exceeds
    its limit.  Input must be grouped by query (``lims`` CSR offsets).
    """
    capped = np.flatnonzero(counts > limits)
    if capped.size == 0:
        return None
    keep = np.ones(q.size, dtype=bool)
    for query in capped:
        lo, hi = int(lims[query]), int(lims[query + 1])
        keep[lo:hi] = closest_mask(dists[lo:hi], ids[lo:hi], int(limits[query]))
    return keep


def group_topk(
    q: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    num_queries: int,
    k: int,
):
    """Per-query k smallest candidates by ``(distance, id)``, sorted.

    Input is one pooled candidate list grouped by query (ascending ``q``);
    output is CSR ``(lims, ids, dists)`` with each query's survivors in
    canonical order.  This is the final cut of every batched baseline.
    """
    counts = np.bincount(q, minlength=num_queries)
    lims_in = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    taken = np.minimum(counts, k)
    lims = np.concatenate([[0], np.cumsum(taken)]).astype(np.int64)
    out_ids = np.empty(int(lims[-1]), dtype=ids.dtype)
    out_dists = np.empty(int(lims[-1]), dtype=dists.dtype)
    for query in range(num_queries):
        lo, hi = int(lims_in[query]), int(lims_in[query + 1])
        if hi == lo:
            continue
        order = np.lexsort((ids[lo:hi], dists[lo:hi]))[: int(taken[query])]
        olo, ohi = int(lims[query]), int(lims[query + 1])
        out_ids[olo:ohi] = ids[lo:hi][order]
        out_dists[olo:ohi] = dists[lo:hi][order]
    return lims, out_ids, out_dists


def sampled_project(
    points: np.ndarray,
    sample_idx: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """FastLSH-style sampled projection: each of the m hash functions
    reads only ``s`` sampled coordinates (``sample_idx``/``weights`` are
    ``(m, s)``), cutting per-point hashing from O(d·m) toward O(s·m).

    The contraction is a single ``einsum("nms,ms->nm")`` over the
    gathered ``(n, m, s)`` tensor.  The gather is forced C-contiguous
    first — einsum's reduction order follows memory layout, so pinning
    the layout is what pins the bits across backends.
    """
    points = np.atleast_2d(points)
    gathered = np.ascontiguousarray(points[:, sample_idx])
    return np.einsum("nms,ms->nm", gathered, weights)
