"""Optional numba acceleration for order-independent mask kernels.

numba is auto-detected: when the import fails (it is not a declared
dependency) every entry point reports ``enabled() is False`` and the
``fast`` backend silently stays on its NumPy implementations.  When it
*is* importable, only kernels whose output is a boolean mask built from
elementwise comparisons are jitted — reductions are excluded because a
jitted summation order would not be bit-identical to ``einsum``.  As a
final guard the first real invocation is verified element-for-element
against the NumPy twin; any mismatch (or any jit failure) permanently
disables the numba path for the process.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - numba is absent in the CI container
    import numba  # noqa: F401

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised as the default path
    numba = None
    HAVE_NUMBA = False

_state = {"disabled": not HAVE_NUMBA, "verified": False, "jit": None}


def available() -> bool:
    """Whether numba imported cleanly in this process."""
    return HAVE_NUMBA


def enabled() -> bool:
    """Whether the jitted kernels are importable and still trusted."""
    return not _state["disabled"]


def _compile():  # pragma: no cover - requires numba
    from numba import njit

    @njit(cache=False)
    def inner_prune_jit(
        eidx, rep_q, rep_pd, entry_pd, entry_radius, hr_min, hr_max, rings, radius,
        use_parent, use_rings,
    ):
        n = eidx.size
        keep = np.zeros(n, dtype=np.bool_)
        num_pivots = rings.shape[1]
        for i in range(n):
            r = radius[i]
            e = eidx[i]
            if use_parent:
                pd = rep_pd[i]
                if pd == pd:  # NaN-aware: root rows have no parent filter
                    if abs(entry_pd[e] - pd) > r + entry_radius[e]:
                        continue
            ok = True
            if use_rings:
                qi = rep_q[i]
                for p in range(num_pivots):
                    rq = rings[qi, p]
                    if hr_min[e, p] > rq + r or hr_max[e, p] < rq - r:
                        ok = False
                        break
            if ok:
                keep[i] = True
        return keep

    return inner_prune_jit


def inner_prune(
    *,
    eidx: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    entry_pd: np.ndarray,
    entry_radius: np.ndarray,
    hr_min: np.ndarray,
    hr_max: np.ndarray,
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
    verify_against,
) -> Optional[np.ndarray]:  # pragma: no cover - requires numba
    """Jitted routing-entry filter; ``None`` means "use the NumPy twin"."""
    if _state["disabled"]:
        return None
    try:
        if _state["jit"] is None:
            _state["jit"] = _compile()
        n = eidx.size
        radius_vec = (
            radius
            if isinstance(radius, np.ndarray)
            else np.full(n, float(radius), dtype=np.float64)
        )
        use_parent = bool(use_parent_filter and rep_pd is not None)
        pd_vec = rep_pd if use_parent else np.empty(0, dtype=np.float64)
        use_rings = query_rings is not None
        rings = (
            query_rings if use_rings else np.empty((0, 0), dtype=np.float64)
        )
        result = _state["jit"](
            eidx, rep_q, pd_vec, entry_pd, entry_radius, hr_min, hr_max, rings,
            radius_vec, use_parent, use_rings,
        )
    except Exception:
        _state["disabled"] = True
        return None
    if not _state["verified"]:
        expected = verify_against(
            eidx=eidx,
            rep_q=rep_q,
            rep_pd=rep_pd,
            entry_pd=entry_pd,
            entry_radius=entry_radius,
            hr_min=hr_min,
            hr_max=hr_max,
            query_rings=query_rings,
            radius=radius,
            use_parent_filter=use_parent_filter,
        )
        if not np.array_equal(result, expected):
            _state["disabled"] = True
            return None
        _state["verified"] = True
    return result
