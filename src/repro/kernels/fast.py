"""Fused / reorganized hot kernels — byte-identical to the reference.

Every function here returns exactly the bytes its
:mod:`repro.kernels.reference` twin returns; only the control flow
differs:

- Pruning masks work on *compressed survivor indices* (one
  ``flatnonzero`` after the cheap parent test, then per-pivot column
  narrowing) instead of full-width boolean writes, so each gather only
  touches rows the previous filters kept.
- Distance kernels evaluate in cache-sized chunks; each row's
  ``subtract``/``einsum``/``sqrt`` reduction is independent, so chunking
  cannot change a bit.
- The budget cut replaces the per-query Python loop with a single
  stable ``lexsort`` + rank threshold over the whole pooled batch.

This backend also advertises ``SUPPORTS_ADMISSION``: the flat-tree
traversal may tighten the per-pair radius to its running k-th candidate
distance (a pure subset filter whose dropped rows provably cannot make
the canonical ``(distance, id)`` cut), so the full ball is never
materialized before the ``⌈βn⌉+k`` cap.  When numba is importable the
routing-entry filter additionally dispatches to a jitted twin
(:mod:`repro.kernels._numba`) that self-verifies against this module on
first use and falls back cleanly on any mismatch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.kernels import _numba

SUPPORTS_ADMISSION = True

#: Rows per block for chunked distance evaluation: large enough to keep
#: the einsum efficient, small enough that (rows × d) stays in cache.
_DIST_CHUNK = 65536


def leaf_prune(
    *,
    member: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    leaf_pd: np.ndarray,
    ring_cols: List[np.ndarray],
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
) -> np.ndarray:
    """Reference twin of ``reference.leaf_prune`` on compressed indices."""
    vec = isinstance(radius, np.ndarray)
    if use_parent_filter and rep_pd is not None:
        # NaN parent distances (root leaves) compare False; re-admit them
        # explicitly instead of sub-indexing by the known mask.
        inside = np.abs(leaf_pd[member] - rep_pd) <= radius
        sub = np.flatnonzero(inside | np.isnan(rep_pd))
    else:
        sub = np.arange(member.size, dtype=np.int64)
    if query_rings is not None:
        for pivot in range(len(ring_cols)):
            if sub.size == 0:
                break
            r_sub = radius[sub] if vec else radius
            ring_ok = (
                np.abs(
                    ring_cols[pivot][member[sub]] - query_rings[rep_q[sub], pivot]
                )
                <= r_sub
            )
            sub = sub[ring_ok]
    keep = np.zeros(member.size, dtype=bool)
    keep[sub] = True
    return keep


def inner_prune(
    *,
    eidx: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    entry_pd: np.ndarray,
    entry_radius: np.ndarray,
    hr_min: np.ndarray,
    hr_max: np.ndarray,
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
) -> np.ndarray:
    """Reference twin of ``reference.inner_prune``; parent test first,
    ring intervals only on its survivors, one pivot column at a time."""
    if _numba.enabled():
        result = _numba.inner_prune(
            eidx=eidx,
            rep_q=rep_q,
            rep_pd=rep_pd,
            entry_pd=entry_pd,
            entry_radius=entry_radius,
            hr_min=hr_min,
            hr_max=hr_max,
            query_rings=query_rings,
            radius=radius,
            use_parent_filter=use_parent_filter,
            verify_against=_inner_prune_numpy,
        )
        if result is not None:
            return result
    return _inner_prune_numpy(
        eidx=eidx,
        rep_q=rep_q,
        rep_pd=rep_pd,
        entry_pd=entry_pd,
        entry_radius=entry_radius,
        hr_min=hr_min,
        hr_max=hr_max,
        query_rings=query_rings,
        radius=radius,
        use_parent_filter=use_parent_filter,
    )


def _inner_prune_numpy(
    *,
    eidx: np.ndarray,
    rep_q: np.ndarray,
    rep_pd: Optional[np.ndarray],
    entry_pd: np.ndarray,
    entry_radius: np.ndarray,
    hr_min: np.ndarray,
    hr_max: np.ndarray,
    query_rings: Optional[np.ndarray],
    radius,
    use_parent_filter: bool,
) -> np.ndarray:
    vec = isinstance(radius, np.ndarray)
    if use_parent_filter and rep_pd is not None:
        inside = (
            np.abs(entry_pd[eidx] - rep_pd) <= radius + entry_radius[eidx]
        )
        sub = np.flatnonzero(inside | np.isnan(rep_pd))
    else:
        sub = np.arange(eidx.size, dtype=np.int64)
    if query_rings is not None:
        num_pivots = query_rings.shape[1]
        for pivot in range(num_pivots):
            if sub.size == 0:
                break
            r_sub = radius[sub] if vec else radius
            sub_e = eidx[sub]
            rq = query_rings[rep_q[sub], pivot]
            ring_ok = (hr_min[sub_e, pivot] <= rq + r_sub) & (
                hr_max[sub_e, pivot] >= rq - r_sub
            )
            sub = sub[ring_ok]
    keep = np.zeros(eidx.size, dtype=bool)
    keep[sub] = True
    return keep


def pair_distances(rows: np.ndarray, query_rows: np.ndarray) -> np.ndarray:
    """Chunked twin of ``reference.pair_distances`` (consumes *rows*)."""
    total = rows.shape[0]
    if total <= _DIST_CHUNK:
        np.subtract(rows, query_rows, out=rows)
        return np.sqrt(np.einsum("ij,ij->i", rows, rows))
    out = np.empty(total, dtype=rows.dtype)
    for lo in range(0, total, _DIST_CHUNK):
        hi = min(lo + _DIST_CHUNK, total)
        block = rows[lo:hi]
        np.subtract(block, query_rows[lo:hi], out=block)
        out[lo:hi] = np.sqrt(np.einsum("ij,ij->i", block, block))
    return out


def verify_distances(
    data: np.ndarray,
    ids: np.ndarray,
    queries: np.ndarray,
    rep_q: np.ndarray,
) -> np.ndarray:
    """Chunked gather + in-place subtract twin of
    ``reference.verify_distances``."""
    total = ids.shape[0]
    out = np.empty(total, dtype=np.result_type(data, queries))
    for lo in range(0, total, _DIST_CHUNK):
        hi = min(lo + _DIST_CHUNK, total)
        rows = data[ids[lo:hi]]
        np.subtract(rows, queries[rep_q[lo:hi]], out=rows)
        out[lo:hi] = np.sqrt(np.einsum("ij,ij->i", rows, rows))
    return out


def _rank_in_group(counts: np.ndarray, total: int) -> np.ndarray:
    """0-based rank of each sorted position within its query group."""
    starts = np.concatenate([[0], np.cumsum(counts[:-1])]).astype(np.int64)
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


#: Capped-group count above which the lexsort rank cut beats per-group
#: selection: the per-group path costs one Python iteration + argpartition
#: per capped query, the lexsort path one 3-key sort of the whole pool.
_LEXSORT_MIN_GROUPS = 1024


def budget_cut(
    q: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    counts: np.ndarray,
    lims: np.ndarray,
    limits: np.ndarray,
) -> Optional[np.ndarray]:
    """Shape-adaptive twin of ``reference.budget_cut``.

    Few capped groups (the flat-traversal regime: tens of queries with
    large pools) use the reference's O(pool) per-group boundary cut —
    argpartition, no full sort.  Many tiny groups (high-Q serving
    batches) amortize one stable ``(q, distance, id)`` lexsort and a
    rank-below-limit threshold instead of paying Python dispatch per
    group.  Both branches produce the canonical cut, byte for byte.
    """
    capped = np.flatnonzero(counts > limits)
    if capped.size == 0:
        return None
    if capped.size < _LEXSORT_MIN_GROUPS:
        from repro.kernels import reference

        keep = np.ones(q.size, dtype=bool)
        for query in capped:
            lo, hi = int(lims[query]), int(lims[query + 1])
            keep[lo:hi] = reference.closest_mask(
                dists[lo:hi], ids[lo:hi], int(limits[query])
            )
        return keep
    order = np.lexsort((ids, dists, q))
    rank = _rank_in_group(counts, q.size)
    allowed = np.where(counts > limits, limits, counts)
    sel = rank < np.repeat(allowed, counts)
    keep = np.zeros(q.size, dtype=bool)
    keep[order[sel]] = True
    return keep


def group_topk(
    q: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    num_queries: int,
    k: int,
):
    """Shape-adaptive twin of ``reference.group_topk``.

    Many tiny groups (high-Q batches with a handful of candidates each)
    amortize one global stable ``(q, distance, id)`` lexsort + rank
    threshold; otherwise the per-group sort is cheaper than a 3-key sort
    of the whole pool and the reference path runs as-is.  Either branch
    returns the canonical CSR cut, byte for byte.
    """
    if num_queries < _LEXSORT_MIN_GROUPS or q.size > 8 * num_queries:
        from repro.kernels import reference

        return reference.group_topk(q, ids, dists, num_queries, k)
    counts = np.bincount(q, minlength=num_queries)
    taken = np.minimum(counts, k)
    lims = np.concatenate([[0], np.cumsum(taken)]).astype(np.int64)
    order = np.lexsort((ids, dists, q))
    rank = _rank_in_group(counts, q.size)
    take = order[rank < np.repeat(taken, counts)]
    return lims, ids[take], dists[take]


def sampled_project(
    points: np.ndarray,
    sample_idx: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Chunked ``np.take``-gather twin of ``reference.sampled_project``.

    ``take`` on a raveled index is faster than the reference's fancy
    index + copy, and each chunk lands on the same C-contiguous
    ``(rows, m, s)`` tensor the reference builds — the einsum contracts
    identical operands row by row, so chunking cannot change a bit.
    Keeping the gathered tensor cache-sized roughly halves the cost of
    the big-n projection versus one monolithic gather.
    """
    points = np.atleast_2d(points)
    n = points.shape[0]
    m, s = sample_idx.shape
    flat_idx = sample_idx.ravel()
    if n * m * s <= _DIST_CHUNK:
        gathered = np.take(points, flat_idx, axis=1).reshape(n, m, s)
        return np.einsum("nms,ms->nm", gathered, weights)
    out = np.empty((n, m), dtype=np.result_type(points, weights))
    rows = max(1, _DIST_CHUNK // max(1, m * s))
    for lo in range(0, n, rows):
        hi = min(lo + rows, n)
        gathered = np.take(points[lo:hi], flat_idx, axis=1).reshape(hi - lo, m, s)
        out[lo:hi] = np.einsum("nms,ms->nm", gathered, weights)
    return out
