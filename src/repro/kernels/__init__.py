"""Runtime-dispatched hot kernels with differential-tested reference twins.

The library's hottest inner loops — the Eq. 5 frontier masks and leaf
distance verification of :class:`~repro.pmtree.flat.FlatPMTree`, the
pooled candidate cuts, batched baseline verification and the sampled
hash projections — live here as *kernels*: small array-in/array-out
functions that exist in two implementations.

``reference`` (:mod:`repro.kernels.reference`) is the NumPy semantic
contract, extracted verbatim from the previously inlined hot paths.
``fast`` (:mod:`repro.kernels.fast`) reorganizes control flow (chunking,
staged mask narrowing, vectorized rank cuts, optional numba jits) and
must return **byte-identical** arrays; ``tests/kernels/`` asserts that
for every kernel under adversarial shapes.  The fast backend also
unlocks the flat tree's budget-aware admission pass (results unchanged,
work counters smaller — see :mod:`repro.pmtree.flat`).

Select a backend with the ``REPRO_KERNELS`` environment variable
(``numpy`` — the default — or ``fast``), programmatically via
:func:`set_backend`, or scoped via :func:`use_backend`::

    with repro.kernels.use_backend("fast"):
        index.search(queries, k=10)

numba is auto-detected inside the fast backend and falls back cleanly
(never a hard dependency); :func:`numba_available` reports the outcome.
Every dispatched call increments a per-``(backend, kernel)`` counter
exported through the observability registry as ``kernel_calls``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.kernels import _numba, fast, reference

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "active",
    "available_backends",
    "kernel_calls",
    "numba_available",
    "reset_kernel_calls",
    "set_backend",
    "use_backend",
]

#: The dispatched kernel surface; each name exists in both backends and
#: is differential-tested in ``tests/kernels/``.
KERNEL_NAMES: Tuple[str, ...] = (
    "leaf_prune",
    "inner_prune",
    "pair_distances",
    "verify_distances",
    "budget_cut",
    "group_topk",
    "sampled_project",
)

_MODULES = {"numpy": reference, "fast": fast}

#: Per-(backend, kernel) dispatch counts for this process.
_CALLS: Dict[Tuple[str, str], int] = {}


def _obs_counter(backend: str, kernel: str):
    """Lazily bind the ``kernel_calls`` counter in the default registry."""
    from repro.obs.metrics import default_registry

    return default_registry().counter(
        "kernel_calls",
        "Hot-kernel invocations dispatched by repro.kernels.",
        labels={"backend": backend, "kernel": kernel},
    )


def _counted(backend: str, kernel: str, fn):
    key = (backend, kernel)
    bound = []

    def wrapper(*args, **kwargs):
        _CALLS[key] = _CALLS.get(key, 0) + 1
        if not bound:
            try:
                bound.append(_obs_counter(backend, kernel))
            except Exception:
                bound.append(None)
        counter = bound[0]
        if counter is not None:
            counter.inc()
        return fn(*args, **kwargs)

    wrapper.__name__ = f"{backend}.{kernel}"
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


class KernelBackend:
    """One resolved kernel set: ``name`` plus a callable per kernel.

    ``supports_admission`` tells the flat-tree traversal whether this
    backend may tighten the per-pair search radius to the running k-th
    candidate distance (the budget-aware admission pass).  Kernel
    attributes are counted wrappers around the backend module's
    functions, so dispatch adds one dict increment per *batch-level*
    call — never per element.
    """

    def __init__(self, name: str, module) -> None:
        self.name = name
        self.supports_admission = bool(module.SUPPORTS_ADMISSION)
        for kernel in KERNEL_NAMES:
            setattr(self, kernel, _counted(name, kernel, getattr(module, kernel)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r})"


_backends: Dict[str, KernelBackend] = {}
_active: Optional[KernelBackend] = None


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`set_backend` / ``REPRO_KERNELS``."""
    return tuple(sorted(_MODULES))


def numba_available() -> bool:
    """Whether the fast backend found an importable numba."""
    return _numba.available()


def _resolve(name: str) -> KernelBackend:
    key = (name or "").strip().lower()
    if key not in _MODULES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{', '.join(available_backends())} (REPRO_KERNELS)"
        )
    if key not in _backends:
        _backends[key] = KernelBackend(key, _MODULES[key])
    return _backends[key]


def active() -> KernelBackend:
    """The currently dispatched backend (resolving ``REPRO_KERNELS`` on
    first use; unset means ``numpy``, the reference)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get("REPRO_KERNELS") or "numpy")
    return _active


def set_backend(name: str) -> KernelBackend:
    """Switch the process-wide kernel backend; returns it."""
    global _active
    _active = _resolve(name)
    return _active


@contextmanager
def use_backend(name: str):
    """Scoped backend switch: restores the previous backend on exit."""
    global _active
    previous = active()
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


def kernel_calls() -> Dict[Tuple[str, str], int]:
    """Snapshot of per-``(backend, kernel)`` dispatch counts."""
    return dict(_CALLS)


def reset_kernel_calls() -> None:
    """Zero the in-module dispatch counts (obs counters keep running)."""
    _CALLS.clear()
