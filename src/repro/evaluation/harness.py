"""Run an ANN index over a query workload and aggregate §6's three metrics:
average query time (ms), overall ratio, and recall — plus the VLDBJ
extension's workloads: range queries (recall against the exact ball,
precision over the admitted c·r slack) and closest-pair search (rank-wise
distance ratio).

Indexes can be supplied as instances or constructed by registry name
through :func:`evaluate_algorithm`, and kNN workloads can be driven either
through the per-query ``query()`` loop (the paper's protocol — every
query timed individually) or through the batched ``search()`` entry
point (``batch=True`` — one timed call, amortised per-query latency).
Range and closest-pair evaluation (:func:`run_range_query_set`,
:func:`evaluate_closest_pairs`) always use the batched entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.baselines.base import ANNIndex
from repro.evaluation.ground_truth import (
    GroundTruth,
    compute_ground_truth,
)
from repro.evaluation.metrics import (
    closest_pair_ratio,
    overall_ratio,
    range_precision,
    range_recall,
    recall,
)
from repro.queries import ClosestPairResult, RangeResult
from repro.registry import create_index


@dataclass(frozen=True)
class AlgorithmResult:
    """Aggregated outcome of one (algorithm, workload, k) evaluation."""

    algorithm: str
    dataset: str
    k: int
    query_time_ms: float
    overall_ratio: float
    recall: float
    per_query_time_ms: np.ndarray = field(repr=False, default=None)
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        ntotal = self.extra.get("ntotal")
        suffix = f" n={int(ntotal)}" if ntotal is not None else ""
        return (
            f"{self.algorithm:<12} {self.dataset:<8} k={self.k:<4} "
            f"time={self.query_time_ms:8.2f}ms ratio={self.overall_ratio:.4f} "
            f"recall={self.recall:.4f}{suffix}"
        )


def run_query_set(
    index: ANNIndex,
    queries: np.ndarray,
    k: int,
    ground_truth: GroundTruth,
    batch: bool = False,
) -> AlgorithmResult:
    """Query *index* with every row of *queries*.

    With ``batch=False`` (the paper's protocol) each ``query()`` call is
    timed individually; with ``batch=True`` one ``search()`` call answers
    the whole matrix and its wall time is divided evenly across queries.
    Ratio and recall are averaged over queries exactly as in §6.1 either
    way; per-query times are kept so the benchmark layer can report
    distributions.
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: fit the index before evaluation")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    num_queries = queries.shape[0]
    if ground_truth.num_queries != num_queries:
        raise ValueError(
            f"ground truth covers {ground_truth.num_queries} queries, got {num_queries}"
        )
    if ground_truth.k_max < k:
        raise ValueError(f"ground truth has k_max={ground_truth.k_max} < k={k}")
    times = np.empty(num_queries, dtype=np.float64)
    ratios = np.empty(num_queries, dtype=np.float64)
    recalls = np.empty(num_queries, dtype=np.float64)
    candidate_counts: List[float] = []

    if batch:
        start = time.perf_counter()
        result = index.search(queries, k)
        times[:] = (time.perf_counter() - start) * 1e3 / num_queries
        for i in range(num_queries):
            exact_ids, exact_dists = ground_truth.for_query(i, k)
            valid = result.ids[i] >= 0
            ratios[i] = overall_ratio(result.distances[i][valid], exact_dists, k=k)
            recalls[i] = recall(result.ids[i][valid], exact_ids, k=k)
            stats = (
                result.per_query_stats[i] if i < len(result.per_query_stats) else {}
            )
            if "candidates" in stats:
                candidate_counts.append(stats["candidates"])
    else:
        for i, query in enumerate(queries):
            start = time.perf_counter()
            result = index.query(query, k)
            times[i] = (time.perf_counter() - start) * 1e3
            exact_ids, exact_dists = ground_truth.for_query(i, k)
            ratios[i] = overall_ratio(result.distances, exact_dists, k=k)
            recalls[i] = recall(result.ids, exact_ids, k=k)
            if "candidates" in result.stats:
                candidate_counts.append(result.stats["candidates"])

    finite = np.isfinite(ratios)
    mean_ratio = float(ratios[finite].mean()) if np.any(finite) else float("inf")
    extra: Dict[str, float] = {"ntotal": float(index.ntotal)}
    if candidate_counts:
        extra["mean_candidates"] = float(np.mean(candidate_counts))
    return AlgorithmResult(
        algorithm=index.name,
        dataset="",
        k=k,
        query_time_ms=float(times.mean()),
        overall_ratio=mean_ratio,
        recall=float(recalls.mean()),
        per_query_time_ms=times,
        extra=extra,
    )


def evaluate_index(
    index: ANNIndex,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "",
    ground_truth: GroundTruth | None = None,
    batch: bool = False,
) -> AlgorithmResult:
    """Convenience wrapper: compute ground truth if absent, then run."""
    if ground_truth is None:
        ground_truth = compute_ground_truth(data, queries, k_max=k)
    result = run_query_set(index, queries, k, ground_truth, batch=batch)
    return AlgorithmResult(
        algorithm=result.algorithm,
        dataset=dataset_name,
        k=result.k,
        query_time_ms=result.query_time_ms,
        overall_ratio=result.overall_ratio,
        recall=result.recall,
        per_query_time_ms=result.per_query_time_ms,
        extra=result.extra,
    )


@dataclass(frozen=True)
class RangeAlgorithmResult:
    """Aggregated outcome of one (algorithm, workload, radius) range run."""

    algorithm: str
    dataset: str
    radius: float
    query_time_ms: float
    recall: float
    precision: float
    mean_returned: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.algorithm:<12} {self.dataset:<8} r={self.radius:<8.3g} "
            f"time={self.query_time_ms:8.2f}ms recall={self.recall:.4f} "
            f"precision={self.precision:.4f} returned={self.mean_returned:.1f}"
        )


@dataclass(frozen=True)
class ClosestPairEvalResult:
    """Outcome of one (algorithm, m) closest-pair evaluation."""

    algorithm: str
    dataset: str
    m: int
    time_ms: float
    ratio: float
    overlap: float  # fraction of the exact pair set recovered
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.algorithm:<12} {self.dataset:<8} m={self.m:<4} "
            f"time={self.time_ms:8.2f}ms ratio={self.ratio:.4f} "
            f"overlap={self.overlap:.4f}"
        )


def run_range_query_set(
    index: ANNIndex,
    queries: np.ndarray,
    radius: float,
    ground_truth: RangeResult,
    dataset_name: str = "",
    c: float | None = None,
    budget: int | None = None,
) -> RangeAlgorithmResult:
    """Range-query every row of *queries* at *radius* and score the answers.

    One timed ``range_search`` call answers the batch; per-query recall is
    measured against the exact ball (``ground_truth`` from
    :func:`~repro.evaluation.ground_truth.compute_range_ground_truth`),
    precision against the radius itself (how much of the c·r slack the
    algorithm used).
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: fit the index before evaluation")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    num_queries = queries.shape[0]
    if ground_truth.num_queries != num_queries:
        raise ValueError(
            f"ground truth covers {ground_truth.num_queries} queries, got {num_queries}"
        )
    start = time.perf_counter()
    result = index.range_search(queries, radius, c=c, budget=budget)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    recalls = np.empty(num_queries, dtype=np.float64)
    precisions = np.empty(num_queries, dtype=np.float64)
    for i in range(num_queries):
        recalls[i] = range_recall(result[i].ids, ground_truth[i].ids)
        precisions[i] = range_precision(result[i].distances, radius)
    extra: Dict[str, float] = {"ntotal": float(index.ntotal)}
    if "candidates" in result.stats:
        extra["mean_candidates"] = float(result.stats["candidates"])
    return RangeAlgorithmResult(
        algorithm=index.name,
        dataset=dataset_name,
        radius=float(radius),
        query_time_ms=elapsed_ms / num_queries,
        recall=float(recalls.mean()),
        precision=float(precisions.mean()),
        mean_returned=float(result.counts.mean()),
        extra=extra,
    )


def evaluate_closest_pairs(
    index: ANNIndex,
    m: int,
    ground_truth: ClosestPairResult,
    dataset_name: str = "",
    budget: int | None = None,
) -> ClosestPairEvalResult:
    """Time one ``closest_pairs(m)`` call and score it against the exact pairs.

    ``ratio`` is the rank-wise distance ratio (1.0 = perfect); ``overlap``
    the fraction of the exact pair set the algorithm recovered.
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: fit the index before evaluation")
    if len(ground_truth) < m:
        raise ValueError(
            f"ground truth holds {len(ground_truth)} pairs, need at least {m}"
        )
    start = time.perf_counter()
    result = index.closest_pairs(m, budget=budget)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    exact_set = {tuple(pair) for pair in ground_truth.pairs[:m].tolist()}
    found_set = {tuple(pair) for pair in result.pairs.tolist()}
    overlap = len(exact_set & found_set) / len(exact_set) if exact_set else 1.0
    ratio = closest_pair_ratio(result.distances, ground_truth.distances[:m], m=m)
    extra: Dict[str, float] = {"ntotal": float(index.ntotal)}
    if "verified" in result.stats:
        extra["verified"] = float(result.stats["verified"])
    return ClosestPairEvalResult(
        algorithm=index.name,
        dataset=dataset_name,
        m=int(m),
        time_ms=elapsed_ms,
        ratio=ratio,
        overlap=overlap,
        extra=extra,
    )


def evaluate_algorithm(
    name: str,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "",
    ground_truth: GroundTruth | None = None,
    batch: bool = False,
    index_params: Mapping[str, Any] | None = None,
) -> AlgorithmResult:
    """Factory-driven evaluation: construct *name* via the registry, fit it
    on *data*, and run the workload.

    ``index_params`` is passed to :func:`repro.create_index` verbatim, so
    any registered algorithm — including ones registered by downstream
    code — is one string away from a paper-style evaluation row.
    """
    index = create_index(name, **dict(index_params or {}))
    index.fit(data)
    return evaluate_index(
        index,
        data,
        queries,
        k,
        dataset_name=dataset_name,
        ground_truth=ground_truth,
        batch=batch,
    )
