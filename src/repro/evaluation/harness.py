"""Run an ANN index over a query workload and aggregate §6's three metrics:
average query time (ms), overall ratio, and recall."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.baselines.base import ANNIndex
from repro.evaluation.ground_truth import GroundTruth, compute_ground_truth
from repro.evaluation.metrics import overall_ratio, recall


@dataclass(frozen=True)
class AlgorithmResult:
    """Aggregated outcome of one (algorithm, workload, k) evaluation."""

    algorithm: str
    dataset: str
    k: int
    query_time_ms: float
    overall_ratio: float
    recall: float
    per_query_time_ms: np.ndarray = field(repr=False, default=None)
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.algorithm:<12} {self.dataset:<8} k={self.k:<4} "
            f"time={self.query_time_ms:8.2f}ms ratio={self.overall_ratio:.4f} "
            f"recall={self.recall:.4f}"
        )


def run_query_set(
    index: ANNIndex,
    queries: np.ndarray,
    k: int,
    ground_truth: GroundTruth,
) -> AlgorithmResult:
    """Query *index* with every row of *queries*, timing each call.

    Ratio and recall are averaged over queries exactly as in §6.1; per-query
    times are kept so the benchmark layer can report distributions.
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: build() the index before evaluation")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if ground_truth.num_queries != queries.shape[0]:
        raise ValueError(
            f"ground truth covers {ground_truth.num_queries} queries, got {queries.shape[0]}"
        )
    if ground_truth.k_max < k:
        raise ValueError(f"ground truth has k_max={ground_truth.k_max} < k={k}")
    times = np.empty(queries.shape[0], dtype=np.float64)
    ratios = np.empty(queries.shape[0], dtype=np.float64)
    recalls = np.empty(queries.shape[0], dtype=np.float64)
    candidate_counts: List[float] = []
    for i, query in enumerate(queries):
        start = time.perf_counter()
        result = index.query(query, k)
        times[i] = (time.perf_counter() - start) * 1e3
        exact_ids, exact_dists = ground_truth.for_query(i, k)
        ratios[i] = overall_ratio(result.distances, exact_dists, k=k)
        recalls[i] = recall(result.ids, exact_ids, k=k)
        if "candidates" in result.stats:
            candidate_counts.append(result.stats["candidates"])
    finite = np.isfinite(ratios)
    mean_ratio = float(ratios[finite].mean()) if np.any(finite) else float("inf")
    extra: Dict[str, float] = {}
    if candidate_counts:
        extra["mean_candidates"] = float(np.mean(candidate_counts))
    return AlgorithmResult(
        algorithm=index.name,
        dataset="",
        k=k,
        query_time_ms=float(times.mean()),
        overall_ratio=mean_ratio,
        recall=float(recalls.mean()),
        per_query_time_ms=times,
        extra=extra,
    )


def evaluate_index(
    index: ANNIndex,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "",
    ground_truth: GroundTruth | None = None,
) -> AlgorithmResult:
    """Convenience wrapper: compute ground truth if absent, then run."""
    if ground_truth is None:
        ground_truth = compute_ground_truth(data, queries, k_max=k)
    result = run_query_set(index, queries, k, ground_truth)
    return AlgorithmResult(
        algorithm=result.algorithm,
        dataset=dataset_name,
        k=result.k,
        query_time_ms=result.query_time_ms,
        overall_ratio=result.overall_ratio,
        recall=result.recall,
        per_query_time_ms=result.per_query_time_ms,
        extra=result.extra,
    )
