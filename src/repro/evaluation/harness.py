"""Run an ANN index over a query workload and aggregate §6's three metrics:
average query time (ms), overall ratio, and recall.

Indexes can be supplied as instances or constructed by registry name
through :func:`evaluate_algorithm`, and workloads can be driven either
through the per-query ``query()`` loop (the paper's protocol — every
query timed individually) or through the batched ``search()`` entry
point (``batch=True`` — one timed call, amortised per-query latency).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.baselines.base import ANNIndex
from repro.evaluation.ground_truth import GroundTruth, compute_ground_truth
from repro.evaluation.metrics import overall_ratio, recall
from repro.registry import create_index


@dataclass(frozen=True)
class AlgorithmResult:
    """Aggregated outcome of one (algorithm, workload, k) evaluation."""

    algorithm: str
    dataset: str
    k: int
    query_time_ms: float
    overall_ratio: float
    recall: float
    per_query_time_ms: np.ndarray = field(repr=False, default=None)
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> str:
        ntotal = self.extra.get("ntotal")
        suffix = f" n={int(ntotal)}" if ntotal is not None else ""
        return (
            f"{self.algorithm:<12} {self.dataset:<8} k={self.k:<4} "
            f"time={self.query_time_ms:8.2f}ms ratio={self.overall_ratio:.4f} "
            f"recall={self.recall:.4f}{suffix}"
        )


def run_query_set(
    index: ANNIndex,
    queries: np.ndarray,
    k: int,
    ground_truth: GroundTruth,
    batch: bool = False,
) -> AlgorithmResult:
    """Query *index* with every row of *queries*.

    With ``batch=False`` (the paper's protocol) each ``query()`` call is
    timed individually; with ``batch=True`` one ``search()`` call answers
    the whole matrix and its wall time is divided evenly across queries.
    Ratio and recall are averaged over queries exactly as in §6.1 either
    way; per-query times are kept so the benchmark layer can report
    distributions.
    """
    if not index.is_built:
        raise RuntimeError(f"{index.name}: fit the index before evaluation")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    num_queries = queries.shape[0]
    if ground_truth.num_queries != num_queries:
        raise ValueError(
            f"ground truth covers {ground_truth.num_queries} queries, got {num_queries}"
        )
    if ground_truth.k_max < k:
        raise ValueError(f"ground truth has k_max={ground_truth.k_max} < k={k}")
    times = np.empty(num_queries, dtype=np.float64)
    ratios = np.empty(num_queries, dtype=np.float64)
    recalls = np.empty(num_queries, dtype=np.float64)
    candidate_counts: List[float] = []

    if batch:
        start = time.perf_counter()
        result = index.search(queries, k)
        times[:] = (time.perf_counter() - start) * 1e3 / num_queries
        for i in range(num_queries):
            exact_ids, exact_dists = ground_truth.for_query(i, k)
            valid = result.ids[i] >= 0
            ratios[i] = overall_ratio(result.distances[i][valid], exact_dists, k=k)
            recalls[i] = recall(result.ids[i][valid], exact_ids, k=k)
            stats = (
                result.per_query_stats[i] if i < len(result.per_query_stats) else {}
            )
            if "candidates" in stats:
                candidate_counts.append(stats["candidates"])
    else:
        for i, query in enumerate(queries):
            start = time.perf_counter()
            result = index.query(query, k)
            times[i] = (time.perf_counter() - start) * 1e3
            exact_ids, exact_dists = ground_truth.for_query(i, k)
            ratios[i] = overall_ratio(result.distances, exact_dists, k=k)
            recalls[i] = recall(result.ids, exact_ids, k=k)
            if "candidates" in result.stats:
                candidate_counts.append(result.stats["candidates"])

    finite = np.isfinite(ratios)
    mean_ratio = float(ratios[finite].mean()) if np.any(finite) else float("inf")
    extra: Dict[str, float] = {"ntotal": float(index.ntotal)}
    if candidate_counts:
        extra["mean_candidates"] = float(np.mean(candidate_counts))
    return AlgorithmResult(
        algorithm=index.name,
        dataset="",
        k=k,
        query_time_ms=float(times.mean()),
        overall_ratio=mean_ratio,
        recall=float(recalls.mean()),
        per_query_time_ms=times,
        extra=extra,
    )


def evaluate_index(
    index: ANNIndex,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "",
    ground_truth: GroundTruth | None = None,
    batch: bool = False,
) -> AlgorithmResult:
    """Convenience wrapper: compute ground truth if absent, then run."""
    if ground_truth is None:
        ground_truth = compute_ground_truth(data, queries, k_max=k)
    result = run_query_set(index, queries, k, ground_truth, batch=batch)
    return AlgorithmResult(
        algorithm=result.algorithm,
        dataset=dataset_name,
        k=result.k,
        query_time_ms=result.query_time_ms,
        overall_ratio=result.overall_ratio,
        recall=result.recall,
        per_query_time_ms=result.per_query_time_ms,
        extra=result.extra,
    )


def evaluate_algorithm(
    name: str,
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    dataset_name: str = "",
    ground_truth: GroundTruth | None = None,
    batch: bool = False,
    index_params: Mapping[str, Any] | None = None,
) -> AlgorithmResult:
    """Factory-driven evaluation: construct *name* via the registry, fit it
    on *data*, and run the workload.

    ``index_params`` is passed to :func:`repro.create_index` verbatim, so
    any registered algorithm — including ones registered by downstream
    code — is one string away from a paper-style evaluation row.
    """
    index = create_index(name, **dict(index_params or {}))
    index.fit(data)
    return evaluate_index(
        index,
        data,
        queries,
        k,
        dataset_name=dataset_name,
        ground_truth=ground_truth,
        batch=batch,
    )
