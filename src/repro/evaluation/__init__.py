"""Evaluation harness: the metrics, runners and formatters behind §6.

* :mod:`repro.evaluation.metrics` — overall ratio (Eq. 11) and recall
  (Eq. 12).
* :mod:`repro.evaluation.ground_truth` — cached exact kNN per workload.
* :mod:`repro.evaluation.harness` — run any :class:`ANNIndex` over a query
  set, timing each query and aggregating quality metrics.
* :mod:`repro.evaluation.tables` — plain-text table/series formatting used
  by the benchmark scripts to print paper-style outputs.
"""

from repro.evaluation.ground_truth import GroundTruth, compute_ground_truth
from repro.evaluation.harness import (
    AlgorithmResult,
    evaluate_algorithm,
    evaluate_index,
    run_query_set,
)
from repro.evaluation.metrics import overall_ratio, recall
from repro.evaluation.tables import format_series, format_table

__all__ = [
    "AlgorithmResult",
    "GroundTruth",
    "compute_ground_truth",
    "evaluate_algorithm",
    "evaluate_index",
    "format_series",
    "format_table",
    "overall_ratio",
    "recall",
    "run_query_set",
]
