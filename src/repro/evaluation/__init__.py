"""Evaluation harness: the metrics, runners and formatters behind §6.

* :mod:`repro.evaluation.metrics` — overall ratio (Eq. 11), recall
  (Eq. 12), range recall/precision and the closest-pair ratio.
* :mod:`repro.evaluation.ground_truth` — cached exact kNN per workload,
  plus exact range and closest-pair references.
* :mod:`repro.evaluation.harness` — run any :class:`ANNIndex` over a query
  set (kNN, range or closest-pair), timing each call and aggregating
  quality metrics.
* :mod:`repro.evaluation.tables` — plain-text table/series formatting used
  by the benchmark scripts to print paper-style outputs.
"""

from repro.evaluation.ground_truth import (
    GroundTruth,
    compute_closest_pairs_ground_truth,
    compute_ground_truth,
    compute_range_ground_truth,
)
from repro.evaluation.harness import (
    AlgorithmResult,
    ClosestPairEvalResult,
    RangeAlgorithmResult,
    evaluate_algorithm,
    evaluate_closest_pairs,
    evaluate_index,
    run_query_set,
    run_range_query_set,
)
from repro.evaluation.metrics import (
    closest_pair_ratio,
    overall_ratio,
    range_precision,
    range_recall,
    recall,
)
from repro.evaluation.tables import format_series, format_table

__all__ = [
    "AlgorithmResult",
    "ClosestPairEvalResult",
    "GroundTruth",
    "RangeAlgorithmResult",
    "closest_pair_ratio",
    "compute_closest_pairs_ground_truth",
    "compute_ground_truth",
    "compute_range_ground_truth",
    "evaluate_algorithm",
    "evaluate_closest_pairs",
    "evaluate_index",
    "format_series",
    "format_table",
    "overall_ratio",
    "range_precision",
    "range_recall",
    "recall",
    "run_query_set",
    "run_range_query_set",
]
