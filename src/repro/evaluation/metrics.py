"""Result-quality metrics (§6.1, Eqs. 11–12).

* **overall ratio** — mean of ``‖q, o_i‖ / ‖q, o*_i‖`` over ranks i, where
  o_i is the algorithm's i-th result and o*_i the exact i-th NN; 1.0 is
  perfect, larger is worse.
* **recall** — |R ∩ R*| / |R*|.
"""

from __future__ import annotations

import numpy as np


def overall_ratio(
    result_distances: np.ndarray, exact_distances: np.ndarray, k: int | None = None
) -> float:
    """Eq. 11: rank-wise distance ratio, averaged over the k ranks.

    Both arrays must be ascending.  When the algorithm returned fewer than k
    points, the missing ranks are scored with the worst observed ratio of
    this query (a conservative convention; an empty result raises).
    """
    result_distances = np.asarray(result_distances, dtype=np.float64)
    exact_distances = np.asarray(exact_distances, dtype=np.float64)
    if k is None:
        k = exact_distances.size
    if k <= 0 or exact_distances.size < k:
        raise ValueError(f"need at least k={k} exact distances, got {exact_distances.size}")
    if result_distances.size == 0:
        raise ValueError("algorithm returned no results; ratio undefined")
    ranks = min(k, result_distances.size)
    exact = exact_distances[:ranks]
    # Exact distance can be zero when the query coincides with a data point;
    # in that case any non-zero result distance yields an infinite ratio,
    # which we clamp by treating equal-zero pairs as ratio 1.
    ratios = np.empty(ranks, dtype=np.float64)
    for i in range(ranks):
        if exact[i] <= 0.0:
            ratios[i] = 1.0 if result_distances[i] <= 0.0 else np.inf
        else:
            ratios[i] = result_distances[i] / exact[i]
    if ranks < k:
        worst = ratios.max() if np.isfinite(ratios.max()) else np.inf
        ratios = np.concatenate([ratios, np.full(k - ranks, worst)])
    return float(ratios.mean())


def recall(result_ids: np.ndarray, exact_ids: np.ndarray, k: int | None = None) -> float:
    """Eq. 12: fraction of the exact kNN set that the algorithm returned."""
    result_ids = np.asarray(result_ids, dtype=np.int64)
    exact_ids = np.asarray(exact_ids, dtype=np.int64)
    if k is None:
        k = exact_ids.size
    if k <= 0 or exact_ids.size < k:
        raise ValueError(f"need at least k={k} exact ids, got {exact_ids.size}")
    exact_set = set(int(i) for i in exact_ids[:k])
    hits = sum(1 for i in result_ids[:k] if int(i) in exact_set)
    return hits / k
