"""Result-quality metrics (§6.1, Eqs. 11–12, plus the VLDBJ workloads).

* **overall ratio** — mean of ``‖q, o_i‖ / ‖q, o*_i‖`` over ranks i, where
  o_i is the algorithm's i-th result and o*_i the exact i-th NN; 1.0 is
  perfect, larger is worse.
* **recall** — |R ∩ R*| / |R*|.
* **range recall** — the same set recall for (r, c)-ball range queries,
  measured against the exact ball B(q, r); an empty exact ball scores 1.
* **closest-pair ratio** — the rank-wise distance ratio of the returned
  pairs against the exact m closest pairs (the CP analogue of Eq. 11).
"""

from __future__ import annotations

import numpy as np


def overall_ratio(
    result_distances: np.ndarray, exact_distances: np.ndarray, k: int | None = None
) -> float:
    """Eq. 11: rank-wise distance ratio, averaged over the k ranks.

    Both arrays must be ascending.  When the algorithm returned fewer than k
    points, the missing ranks are scored with the worst observed ratio of
    this query (a conservative convention; an empty result raises).
    """
    result_distances = np.asarray(result_distances, dtype=np.float64)
    exact_distances = np.asarray(exact_distances, dtype=np.float64)
    if k is None:
        k = exact_distances.size
    if k <= 0 or exact_distances.size < k:
        raise ValueError(f"need at least k={k} exact distances, got {exact_distances.size}")
    if result_distances.size == 0:
        raise ValueError("algorithm returned no results; ratio undefined")
    ranks = min(k, result_distances.size)
    exact = exact_distances[:ranks]
    # Exact distance can be zero when the query coincides with a data point;
    # in that case any non-zero result distance yields an infinite ratio,
    # which we clamp by treating equal-zero pairs as ratio 1.
    ratios = np.empty(ranks, dtype=np.float64)
    for i in range(ranks):
        if exact[i] <= 0.0:
            ratios[i] = 1.0 if result_distances[i] <= 0.0 else np.inf
        else:
            ratios[i] = result_distances[i] / exact[i]
    if ranks < k:
        worst = ratios.max() if np.isfinite(ratios.max()) else np.inf
        ratios = np.concatenate([ratios, np.full(k - ranks, worst)])
    return float(ratios.mean())


def recall(result_ids: np.ndarray, exact_ids: np.ndarray, k: int | None = None) -> float:
    """Eq. 12: fraction of the exact kNN set that the algorithm returned."""
    result_ids = np.asarray(result_ids, dtype=np.int64)
    exact_ids = np.asarray(exact_ids, dtype=np.int64)
    if k is None:
        k = exact_ids.size
    if k <= 0 or exact_ids.size < k:
        raise ValueError(f"need at least k={k} exact ids, got {exact_ids.size}")
    exact_set = set(int(i) for i in exact_ids[:k])
    hits = sum(1 for i in result_ids[:k] if int(i) in exact_set)
    return hits / k


def range_recall(result_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """Set recall for one range query: |R ∩ R*| / |R*|.

    ``exact_ids`` is the exact ball population B(q, r).  An empty exact
    ball is answered perfectly by an empty result, so it scores 1.0
    regardless of what the algorithm returned (extra points inside
    B(q, c·r) are permitted by the (r, c) contract and never penalised
    here — measure them separately via precision if needed).
    """
    exact_set = set(int(i) for i in np.asarray(exact_ids, dtype=np.int64))
    if not exact_set:
        return 1.0
    hits = sum(1 for i in np.asarray(result_ids, dtype=np.int64) if int(i) in exact_set)
    return hits / len(exact_set)


def range_precision(
    result_distances: np.ndarray, r: float
) -> float:
    """Fraction of returned range matches that lie inside the exact ball.

    Under the (r, c) contract an algorithm may admit points up to c·r;
    this measures how much of that slack it actually used.  An empty
    result scores 1.0 (nothing wrong was returned).
    """
    result_distances = np.asarray(result_distances, dtype=np.float64)
    if result_distances.size == 0:
        return 1.0
    return float(np.mean(result_distances <= r))


def closest_pair_ratio(
    result_distances: np.ndarray, exact_distances: np.ndarray, m: int | None = None
) -> float:
    """Rank-wise distance ratio of returned pairs vs the exact m closest.

    The CP analogue of Eq. 11: mean over ranks i of
    ``d(pair_i) / d(pair*_i)``; 1.0 is perfect.  Zero-distance exact
    pairs (duplicates) score 1.0 when matched by a zero-distance result
    and ∞ otherwise; missing ranks take the query's worst observed ratio
    (same conventions as :func:`overall_ratio`).
    """
    return overall_ratio(result_distances, exact_distances, k=m)
