"""Plain-text formatting of paper-style tables and figure series.

The benchmark scripts regenerate each table/figure of §6 as text: tables
match the paper's row/column layout; figures become aligned numeric series
(one row per sweep point) suitable for diffing across runs and for
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned monospace table with a title banner."""
    names = [str(name) for name in column_names]
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(name) for name in names]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(names))
    separator = "-" * len(header)
    lines = [f"== {title} ==", header, separator]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def format_series(
    title: str,
    x_name: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    note: str = "",
) -> str:
    """Render a figure as one aligned column per series (x first)."""
    lengths = {name: len(values) for name, values in series.items()}
    if any(length != len(x_values) for length in lengths.values()):
        raise ValueError(f"series lengths {lengths} do not match x length {len(x_values)}")
    columns = [x_name, *series.keys()]
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        rows.append([x, *(series[name][i] for name in series)])
    return format_table(title, columns, rows, note=note)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4f}"
    return str(value)
