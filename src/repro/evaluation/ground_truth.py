"""Exact ground truth — kNN, range and closest-pair — computed once per
workload and reused."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.distance import chunked_knn
from repro.queries import ClosestPairResult, RangeResult


@dataclass(frozen=True)
class GroundTruth:
    """Exact kNN ids and distances for a batch of queries.

    ``ids`` and ``distances`` have shape ``(num_queries, k_max)``; rows are
    ascending by distance.  Slicing ``[:, :k]`` serves any k ≤ k_max, so one
    computation covers a whole parameter sweep.
    """

    ids: np.ndarray
    distances: np.ndarray

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 2:
            raise ValueError(
                f"ids/distances must be matching 2-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    @property
    def num_queries(self) -> int:
        return self.ids.shape[0]

    @property
    def k_max(self) -> int:
        return self.ids.shape[1]

    def for_query(self, index: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        if not 1 <= k <= self.k_max:
            raise ValueError(f"k must be in [1, {self.k_max}], got {k}")
        return self.ids[index, :k], self.distances[index, :k]


def compute_ground_truth(data: np.ndarray, queries: np.ndarray, k_max: int) -> GroundTruth:
    """Exact k_max-NN of every query by blocked brute force."""
    ids, distances = chunked_knn(queries, data, k_max)
    return GroundTruth(ids=ids, distances=distances)


def compute_range_ground_truth(
    data: np.ndarray, queries: np.ndarray, radius: float
) -> RangeResult:
    """The exact ball population B(q, radius) of every query (ragged CSR).

    Delegates to the exact index's brute-force range path, so the result
    carries the same ``(distance, id)`` ordering every backend is
    measured against.
    """
    from repro.baselines.exact import ExactKNN

    return ExactKNN().fit(data).range_search(queries, radius)


def compute_closest_pairs_ground_truth(data: np.ndarray, m: int) -> ClosestPairResult:
    """The exact m closest pairs of *data* by blocked self-join."""
    from repro.baselines.exact import ExactKNN

    return ExactKNN().fit(data).closest_pairs(m)
