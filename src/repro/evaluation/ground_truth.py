"""Exact-kNN ground truth, computed once per workload and reused."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.distance import chunked_knn


@dataclass(frozen=True)
class GroundTruth:
    """Exact kNN ids and distances for a batch of queries.

    ``ids`` and ``distances`` have shape ``(num_queries, k_max)``; rows are
    ascending by distance.  Slicing ``[:, :k]`` serves any k ≤ k_max, so one
    computation covers a whole parameter sweep.
    """

    ids: np.ndarray
    distances: np.ndarray

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        if ids.shape != distances.shape or ids.ndim != 2:
            raise ValueError(
                f"ids/distances must be matching 2-D arrays, got {ids.shape} / {distances.shape}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "distances", distances)

    @property
    def num_queries(self) -> int:
        return self.ids.shape[0]

    @property
    def k_max(self) -> int:
        return self.ids.shape[1]

    def for_query(self, index: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        if not 1 <= k <= self.k_max:
            raise ValueError(f"k must be in [1, {self.k_max}], got {k}")
        return self.ids[index, :k], self.distances[index, :k]


def compute_ground_truth(data: np.ndarray, queries: np.ndarray, k_max: int) -> GroundTruth:
    """Exact k_max-NN of every query by blocked brute force."""
    ids, distances = chunked_knn(queries, data, k_max)
    return GroundTruth(ids=ids, distances=distances)
